#include "netlist/function.h"

#include <algorithm>
#include <cctype>

#include "util/error.h"

namespace mm::netlist {

namespace {

Logic tri_not(Logic v) { return logic_not(v); }

Logic tri_and(Logic a, Logic b) {
  if (a == Logic::kZero || b == Logic::kZero) return Logic::kZero;
  if (a == Logic::kOne && b == Logic::kOne) return Logic::kOne;
  return Logic::kUnknown;
}

Logic tri_or(Logic a, Logic b) {
  if (a == Logic::kOne || b == Logic::kOne) return Logic::kOne;
  if (a == Logic::kZero && b == Logic::kZero) return Logic::kZero;
  return Logic::kUnknown;
}

Logic tri_xor(Logic a, Logic b) {
  if (a == Logic::kUnknown || b == Logic::kUnknown) return Logic::kUnknown;
  return (a == b) ? Logic::kZero : Logic::kOne;
}

}  // namespace

// Recursive-descent parser over Liberty function syntax.
// Grammar (precedence low to high):
//   or   := xor (('+' | '|') xor)*
//   xor  := and ('^' and)*
//   and  := unary (('*' | '&')? unary)*     (juxtaposition = AND)
//   unary:= ('!' unary) | primary ('\'')*
//   primary := '(' or ')' | '0' | '1' | identifier
class FuncParser {
 public:
  FuncParser(std::string_view text,
             const std::function<uint32_t(std::string_view)>& pin_index)
      : text_(text), pin_index_(pin_index) {}

  FuncExpr run() {
    FuncExpr out;
    expr_ = &out;
    skip();
    out.root_ = parse_or();
    skip();
    if (pos_ != text_.size()) {
      throw Error("function: trailing characters in '" + std::string(text_) + "'");
    }
    std::sort(out.support_.begin(), out.support_.end());
    out.support_.erase(
        std::unique(out.support_.begin(), out.support_.end()),
        out.support_.end());
    return out;
  }

 private:
  using Node = decltype(FuncExpr::nodes_)::value_type;

  int add(Node node) {
    expr_->nodes_.push_back(node);
    return static_cast<int>(expr_->nodes_.size() - 1);
  }

  void skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool at(char c) {
    skip();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool eat(char c) {
    if (!at(c)) return false;
    ++pos_;
    return true;
  }

  bool at_primary_start() {
    skip();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    return c == '(' || c == '!' ||
           std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '\\' || c == '"';
  }

  int parse_or() {
    int lhs = parse_xor();
    while (eat('+') || eat('|')) {
      const int rhs = parse_xor();
      lhs = add({Node::Op::kOr, 0, lhs, rhs});
    }
    return lhs;
  }

  int parse_xor() {
    int lhs = parse_and();
    while (eat('^')) {
      const int rhs = parse_and();
      lhs = add({Node::Op::kXor, 0, lhs, rhs});
    }
    return lhs;
  }

  int parse_and() {
    int lhs = parse_unary();
    while (true) {
      if (eat('*') || eat('&')) {
        const int rhs = parse_unary();
        lhs = add({Node::Op::kAnd, 0, lhs, rhs});
      } else if (at_primary_start()) {
        // Juxtaposition.
        const int rhs = parse_unary();
        lhs = add({Node::Op::kAnd, 0, lhs, rhs});
      } else {
        return lhs;
      }
    }
  }

  int parse_unary() {
    if (eat('!')) {
      const int a = parse_unary();
      return add({Node::Op::kNot, 0, a, -1});
    }
    int p = parse_primary();
    while (eat('\'')) {
      p = add({Node::Op::kNot, 0, p, -1});
    }
    return p;
  }

  int parse_primary() {
    skip();
    if (eat('(')) {
      const int inner = parse_or();
      if (!eat(')')) throw Error("function: missing ')'");
      return inner;
    }
    if (pos_ >= text_.size()) throw Error("function: unexpected end");
    // Quoted sub-expression (Liberty sometimes nests quotes).
    if (text_[pos_] == '"') {
      ++pos_;
      const size_t end = text_.find('"', pos_);
      if (end == std::string_view::npos)
        throw Error("function: unterminated quote");
      FuncParser inner(text_.substr(pos_, end - pos_), pin_index_);
      // Parse the quoted body with a fresh parser into the same expression.
      inner.expr_ = expr_;
      inner.skip();
      const int node = inner.parse_or();
      inner.skip();
      if (inner.pos_ != inner.text_.size())
        throw Error("function: trailing characters in quoted expression");
      pos_ = end + 1;
      return node;
    }
    const char c = text_[pos_];
    if (c == '0' && !is_ident_char(peek_at(pos_ + 1))) {
      ++pos_;
      return add({Node::Op::kConst0, 0, -1, -1});
    }
    if (c == '1' && !is_ident_char(peek_at(pos_ + 1))) {
      ++pos_;
      return add({Node::Op::kConst1, 0, -1, -1});
    }
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\\')) {
      throw Error(std::string("function: unexpected character '") + c + "'");
    }
    size_t start = pos_;
    if (c == '\\') ++pos_;
    while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
    const std::string_view name = text_.substr(start, pos_ - start);
    const uint32_t index = pin_index_(name);
    if (index == UINT32_MAX) {
      throw Error("function: unknown pin '" + std::string(name) + "'");
    }
    expr_->support_.push_back(index);
    return add({Node::Op::kVar, index, -1, -1});
  }

  static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '[' || c == ']';
  }
  char peek_at(size_t i) const { return i < text_.size() ? text_[i] : '\0'; }

  std::string_view text_;
  const std::function<uint32_t(std::string_view)>& pin_index_;
  size_t pos_ = 0;
  FuncExpr* expr_ = nullptr;
};

FuncExpr FuncExpr::parse(
    std::string_view text,
    const std::function<uint32_t(std::string_view)>& pin_index) {
  return FuncParser(text, pin_index).run();
}

Logic FuncExpr::eval_node(int index, const std::vector<Logic>& values) const {
  const Node& node = nodes_[index];
  switch (node.op) {
    case Node::Op::kConst0: return Logic::kZero;
    case Node::Op::kConst1: return Logic::kOne;
    case Node::Op::kVar:
      MM_ASSERT(node.var < values.size());
      return values[node.var];
    case Node::Op::kNot: return tri_not(eval_node(node.a, values));
    case Node::Op::kAnd:
      return tri_and(eval_node(node.a, values), eval_node(node.b, values));
    case Node::Op::kOr:
      return tri_or(eval_node(node.a, values), eval_node(node.b, values));
    case Node::Op::kXor:
      return tri_xor(eval_node(node.a, values), eval_node(node.b, values));
  }
  return Logic::kUnknown;
}

Logic FuncExpr::evaluate(const std::vector<Logic>& values) const {
  if (root_ < 0) return Logic::kUnknown;
  return eval_node(root_, values);
}

bool FuncExpr::depends_on(uint32_t input, const std::vector<Logic>& values,
                          uint32_t max_free_inputs) const {
  if (root_ < 0) return false;
  if (!std::binary_search(support_.begin(), support_.end(), input)) {
    return false;
  }
  // Free (unknown) support variables other than `input`.
  std::vector<uint32_t> free;
  for (uint32_t v : support_) {
    if (v == input) continue;
    if (v < values.size() && values[v] == Logic::kUnknown) free.push_back(v);
  }
  if (free.size() > max_free_inputs) return true;  // conservative

  std::vector<Logic> probe = values;
  const uint64_t combos = uint64_t{1} << free.size();
  for (uint64_t mask = 0; mask < combos; ++mask) {
    for (size_t i = 0; i < free.size(); ++i) {
      probe[free[i]] = (mask >> i) & 1 ? Logic::kOne : Logic::kZero;
    }
    probe[input] = Logic::kZero;
    const Logic out0 = evaluate(probe);
    probe[input] = Logic::kOne;
    const Logic out1 = evaluate(probe);
    if (out0 != out1) return true;
  }
  return false;
}

}  // namespace mm::netlist
