#pragma once
// Fluent construction helper on top of Design: nets are created on first
// mention, instances are declared with {pin, net} pairs in one call. Used by
// the fixtures, the design generator and the tests.

#include <initializer_list>
#include <string_view>
#include <utility>

#include "netlist/design.h"

namespace mm::netlist {

class Builder {
 public:
  explicit Builder(Design* design) : design_(design) { MM_ASSERT(design); }

  /// Net by name, created on first use.
  NetId net(std::string_view name) {
    NetId id = design_->find_net(name);
    return id.valid() ? id : design_->add_net(name);
  }

  PortId input(std::string_view name) {
    const PortId p = design_->add_port(name, PinDir::kInput);
    design_->connect(p, net(name));
    return p;
  }

  PortId output(std::string_view name) {
    const PortId p = design_->add_port(name, PinDir::kOutput);
    design_->connect(p, net(name));
    return p;
  }

  /// Instantiate `cell_name` as `inst_name`, connecting each {pin, net}.
  InstId inst(std::string_view cell_name, std::string_view inst_name,
              std::initializer_list<std::pair<std::string_view, std::string_view>>
                  connections) {
    const LibCellId cell = design_->library().find_cell(cell_name);
    if (!cell.valid())
      throw Error("unknown cell: " + std::string(cell_name));
    const InstId id = design_->add_instance(inst_name, cell);
    for (const auto& [pin, net_name] : connections) {
      design_->connect(id, pin, net(net_name));
    }
    return id;
  }

  Design& design() { return *design_; }

 private:
  Design* design_;
};

}  // namespace mm::netlist
