#include "netlist/liberty.h"

#include <cctype>
#include <cmath>
#include <unordered_map>

#include "netlist/function.h"
#include "util/error.h"
#include "util/logger.h"

namespace mm::netlist {

namespace {

// ---------------------------------------------------------------------------
// Generic Liberty syntax: group(args) { attr : value ; complex(args);  ... }
// ---------------------------------------------------------------------------

struct Group {
  std::string type;
  std::vector<std::string> args;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<Group> groups;
  int line = 0;

  const std::string* attr(std::string_view name) const {
    for (const auto& [k, v] : attrs) {
      if (k == name) return &v;
    }
    return nullptr;
  }
  /// All values of a repeated complex attribute (e.g. "values").
  std::vector<const std::string*> attr_all(std::string_view name) const {
    std::vector<const std::string*> out;
    for (const auto& [k, v] : attrs) {
      if (k == name) out.push_back(&v);
    }
    return out;
  }
};

class LibertyParser {
 public:
  explicit LibertyParser(std::string_view text) : text_(text) {}

  Group run() {
    skip_space();
    Group root = parse_group();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters after library group");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("liberty:" + std::to_string(line_) + ": " + msg);
  }

  void skip_space() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
        pos_ += 2;  // line continuation
        ++line_;
      } else {
        break;
      }
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string read_token() {
    skip_space();
    std::string out;
    if (peek() == '"') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] == '\n') {
          pos_ += 2;  // continuation inside string
          ++line_;
          continue;
        }
        if (text_[pos_] == '\n') ++line_;
        out.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) fail("unterminated string");
      ++pos_;
      return out;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
          c == ')' || c == '{' || c == '}' || c == ':' || c == ';' ||
          c == ',') {
        break;
      }
      out.push_back(c);
      ++pos_;
    }
    return out;
  }

  bool eat(char c) {
    skip_space();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  /// Parses `name (args...) { ... }` with `name` already known to follow.
  Group parse_group() {
    Group group;
    group.line = line_;
    group.type = read_token();
    if (group.type.empty()) fail("expected group name");
    if (!eat('(')) fail("expected '(' after " + group.type);
    while (!eat(')')) {
      const std::string arg = read_token();
      if (!arg.empty()) group.args.push_back(arg);
      eat(',');
      skip_space();
      if (pos_ >= text_.size()) fail("unterminated group arguments");
    }
    if (!eat('{')) fail("expected '{' after " + group.type + "(...)");

    while (true) {
      skip_space();
      if (eat('}')) break;
      if (pos_ >= text_.size()) fail("unterminated group " + group.type);

      const size_t save_pos = pos_;
      const int save_line = line_;
      const std::string name = read_token();
      if (name.empty()) fail("expected statement in " + group.type);
      skip_space();
      if (peek() == ':') {
        // Simple attribute: name : value... ;
        ++pos_;
        std::string value;
        skip_space();
        while (pos_ < text_.size() && text_[pos_] != ';' &&
               text_[pos_] != '\n') {
          value.push_back(text_[pos_++]);
        }
        eat(';');
        // Trim + strip quotes.
        while (!value.empty() && std::isspace(static_cast<unsigned char>(value.back())))
          value.pop_back();
        if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
          value = value.substr(1, value.size() - 2);
        }
        group.attrs.emplace_back(name, value);
      } else if (peek() == '(') {
        // Complex attribute or nested group: look ahead past the ')'.
        size_t probe = pos_ + 1;
        int depth = 1;
        int probe_line = line_;
        while (probe < text_.size() && depth > 0) {
          if (text_[probe] == '(') ++depth;
          if (text_[probe] == ')') --depth;
          if (text_[probe] == '\n') ++probe_line;
          ++probe;
        }
        while (probe < text_.size() &&
               (std::isspace(static_cast<unsigned char>(text_[probe])) ||
                text_[probe] == '\\')) {
          ++probe;
        }
        if (probe < text_.size() && text_[probe] == '{') {
          // Nested group: re-parse from the saved position.
          pos_ = save_pos;
          line_ = save_line;
          group.groups.push_back(parse_group());
        } else {
          // Complex attribute: join the arguments into one value string.
          ++pos_;  // '('
          std::string value;
          while (!eat(')')) {
            const std::string tok = read_token();
            if (!value.empty() && !tok.empty()) value += ", ";
            value += tok;
            eat(',');
            skip_space();
            if (pos_ >= text_.size()) fail("unterminated complex attribute");
          }
          eat(';');
          group.attrs.emplace_back(name, value);
        }
      } else {
        fail("expected ':' or '(' after '" + name + "'");
      }
    }
    return group;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

// ---------------------------------------------------------------------------
// Interpretation
// ---------------------------------------------------------------------------

/// Mean of all floats in a Liberty values("...", "...") string.
double values_mean(const std::string& text, double fallback) {
  double sum = 0.0;
  size_t count = 0;
  const char* p = text.c_str();
  while (*p) {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) {
      ++p;
      continue;
    }
    sum += v;
    ++count;
    p = end;
  }
  return count ? sum / static_cast<double>(count) : fallback;
}

/// Representative delay of a timing() group (mean over its rise/fall
/// tables; scalar `intrinsic_rise` style attributes also accepted).
double timing_delay(const Group& timing, double fallback) {
  double sum = 0.0;
  size_t count = 0;
  for (const Group& table : timing.groups) {
    if (table.type != "cell_rise" && table.type != "cell_fall" &&
        table.type != "rise_constraint" && table.type != "fall_constraint" &&
        table.type != "rise_transition" && table.type != "fall_transition") {
      continue;
    }
    if (table.type == "rise_transition" || table.type == "fall_transition") {
      continue;  // slews don't contribute to the delay scalar
    }
    for (const std::string* values : table.attr_all("values")) {
      const double mean = values_mean(*values, -1.0);
      if (mean >= 0) {
        sum += mean;
        ++count;
      }
    }
  }
  for (const char* attr : {"intrinsic_rise", "intrinsic_fall"}) {
    if (const std::string* v = timing.attr(attr)) {
      sum += std::atof(v->c_str());
      ++count;
    }
  }
  return count ? sum / static_cast<double>(count) : fallback;
}

/// Identifiers referenced in a Liberty expression string ("!CK", "D & SE").
std::vector<std::string> expr_identifiers(const std::string& text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_' || text[i] == '[' || text[i] == ']')) {
        ++i;
      }
      out.push_back(text.substr(start, i - start));
    } else {
      ++i;
    }
  }
  return out;
}

TimingSense sense_of(const std::string* s) {
  if (!s) return TimingSense::kNonUnate;
  if (*s == "positive_unate") return TimingSense::kPositive;
  if (*s == "negative_unate") return TimingSense::kNegative;
  return TimingSense::kNonUnate;
}

constexpr double kDefaultResistance = 0.05;
constexpr double kDefaultDelay = 0.4;
constexpr double kDefaultSetup = 0.15;

void interpret_cell(const Group& cell_group, Library& lib) {
  if (cell_group.args.empty()) {
    throw Error("liberty: cell group without a name (line " +
                std::to_string(cell_group.line) + ")");
  }
  const std::string& cell_name = cell_group.args[0];
  LibCell cell(cell_name, CellFunc::kCustom);

  // Sequential state from ff / latch groups.
  std::vector<std::string> state_vars;
  std::string clocked_on, next_state;
  for (const Group& g : cell_group.groups) {
    if (g.type == "ff" || g.type == "latch") {
      cell.set_sequential(true);
      state_vars = g.args;  // (IQ, IQN)
      if (const std::string* v = g.attr("clocked_on")) clocked_on = *v;
      if (const std::string* v = g.attr(g.type == "ff" ? "next_state" : "data_in")) {
        next_state = *v;
      }
      if (g.type == "latch") {
        if (const std::string* v = g.attr("enable")) clocked_on = *v;
        MM_WARN("liberty: cell %s is a latch; modeled as edge-triggered",
                cell_name.c_str());
      }
    }
  }

  // Pins, in declaration order.
  std::unordered_map<std::string, uint32_t> pin_index;
  std::vector<const Group*> pin_groups;
  for (const Group& g : cell_group.groups) {
    if (g.type != "pin" && g.type != "pg_pin") continue;
    if (g.type == "pg_pin") continue;  // power pins: not timing objects
    if (g.args.empty()) {
      throw Error("liberty: pin group without a name in cell " + cell_name);
    }
    LibPin pin;
    pin.name = g.args[0];
    const std::string* dir = g.attr("direction");
    pin.dir = (dir && *dir == "output") ? PinDir::kOutput : PinDir::kInput;
    if (const std::string* cap = g.attr("capacitance")) {
      pin.cap = std::atof(cap->c_str());
    }
    if (const std::string* clk = g.attr("clock")) {
      pin.is_clock = (*clk == "true");
    }
    const uint32_t index = cell.add_pin(pin);
    pin_index.emplace(g.args[0], index);
    pin_groups.push_back(&g);
  }
  if (pin_groups.empty()) {
    MM_WARN("liberty: cell %s has no pins; skipped", cell_name.c_str());
    return;
  }

  // Mark the clock pin from ff.clocked_on when the `clock` attr is absent.
  auto mark_clock = [&](const std::string& expr) {
    for (const std::string& ident : expr_identifiers(expr)) {
      auto it = pin_index.find(ident);
      if (it != pin_index.end()) {
        cell.pin_mutable(it->second).is_clock = true;
        return it->second;
      }
    }
    return UINT32_MAX;
  };
  const uint32_t clock_pin =
      clocked_on.empty() ? UINT32_MAX : mark_clock(clocked_on);

  auto is_state_var = [&](const std::string& name) {
    for (const std::string& sv : state_vars) {
      if (sv == name) return true;
    }
    return false;
  };

  // Output functions + timing arcs.
  bool has_launch = false, has_check = false;
  for (size_t gi = 0; gi < pin_groups.size(); ++gi) {
    const Group& g = *pin_groups[gi];
    const uint32_t this_pin = pin_index.at(g.args[0]);
    const bool is_output = cell.pins()[this_pin].dir == PinDir::kOutput;

    // Combinational function (ignoring pure state-variable functions like
    // "IQ" — those are launch outputs of sequential cells).
    if (is_output && !cell.is_sequential()) {
      if (const std::string* func = g.attr("function")) {
        bool pure_state = true;
        for (const std::string& ident : expr_identifiers(*func)) {
          if (!is_state_var(ident)) pure_state = false;
        }
        if (!pure_state) {
          auto expr = std::make_shared<FuncExpr>(FuncExpr::parse(
              *func, [&](std::string_view name) -> uint32_t {
                auto it = pin_index.find(std::string(name));
                return it == pin_index.end() ? UINT32_MAX : it->second;
              }));
          cell.set_function(std::move(expr));
        }
      }
    }

    for (const Group& timing : g.groups) {
      if (timing.type != "timing") continue;
      const std::string* related = timing.attr("related_pin");
      if (!related) continue;
      for (const std::string& rp : expr_identifiers(*related)) {
        auto it = pin_index.find(rp);
        if (it == pin_index.end()) continue;
        const uint32_t related_pin = it->second;
        const std::string* type = timing.attr("timing_type");

        LibArc arc;
        if (type && (type->rfind("setup_", 0) == 0 ||
                     type->rfind("hold_", 0) == 0 ||
                     *type == "recovery_rising" || *type == "removal_rising")) {
          // Check: this (data) pin constrained against the related clock.
          arc.kind = ArcKind::kSetupHold;
          arc.from_pin = this_pin;
          arc.to_pin = related_pin;
          arc.intrinsic = timing_delay(timing, kDefaultSetup);
          if (type->rfind("setup_", 0) == 0) {
            has_check = true;
            cell.add_arc(arc);
          }
          // hold/recovery/removal values fold into the same check via the
          // graph's hold convention; only one check arc per pin pair.
          continue;
        }
        if (type && (*type == "rising_edge" || *type == "falling_edge")) {
          arc.kind = ArcKind::kLaunch;
          has_launch = true;
        } else {
          arc.kind = ArcKind::kCombinational;
        }
        arc.from_pin = related_pin;
        arc.to_pin = this_pin;
        arc.sense = sense_of(timing.attr("timing_sense"));
        arc.intrinsic = timing_delay(timing, kDefaultDelay);
        arc.resistance = kDefaultResistance;
        cell.add_arc(arc);
      }
    }
  }

  // Synthesize what sequential cells need but the .lib left implicit.
  if (cell.is_sequential() && clock_pin != UINT32_MAX) {
    if (!has_launch) {
      for (uint32_t p = 0; p < cell.pins().size(); ++p) {
        if (cell.pins()[p].dir == PinDir::kOutput) {
          cell.add_arc({clock_pin, p, ArcKind::kLaunch, TimingSense::kNonUnate,
                        kDefaultDelay, kDefaultResistance});
        }
      }
    }
    if (!has_check && !next_state.empty()) {
      for (const std::string& ident : expr_identifiers(next_state)) {
        auto it = pin_index.find(ident);
        if (it != pin_index.end()) {
          cell.add_arc({it->second, clock_pin, ArcKind::kSetupHold,
                        TimingSense::kNonUnate, kDefaultSetup, 0.0});
        }
      }
    }
  }
  // Combinational cells without timing blocks: arcs from the function
  // support (or every input if no function).
  if (!cell.is_sequential() && cell.arcs().empty()) {
    for (uint32_t out = 0; out < cell.pins().size(); ++out) {
      if (cell.pins()[out].dir != PinDir::kOutput) continue;
      if (cell.function()) {
        for (uint32_t in : cell.function()->support()) {
          cell.add_arc({in, out, ArcKind::kCombinational,
                        TimingSense::kNonUnate, kDefaultDelay,
                        kDefaultResistance});
        }
      } else {
        for (uint32_t in = 0; in < cell.pins().size(); ++in) {
          if (cell.pins()[in].dir != PinDir::kInput) continue;
          cell.add_arc({in, out, ArcKind::kCombinational,
                        TimingSense::kNonUnate, kDefaultDelay,
                        kDefaultResistance});
        }
      }
    }
  }

  lib.add_cell(std::move(cell));
}

}  // namespace

Library read_liberty(std::string_view text) {
  const Group root = LibertyParser(text).run();
  if (root.type != "library") {
    throw Error("liberty: expected a library(...) group, got " + root.type);
  }
  Library lib;
  for (const Group& g : root.groups) {
    if (g.type == "cell") interpret_cell(g, lib);
  }
  if (lib.num_cells() == 0) {
    throw Error("liberty: library contains no cells");
  }
  return lib;
}

}  // namespace mm::netlist
