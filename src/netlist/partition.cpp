#include "netlist/partition.h"

#include <algorithm>
#include <deque>

#include "obs/obs.h"
#include "util/rng.h"

namespace mm::netlist {

namespace {

constexpr uint32_t kUnassigned = UINT32_MAX;

/// Undirected instance adjacency induced by nets: driver instance <->
/// every load instance, plus load <-> load is NOT added (star topology via
/// the driver keeps lists short; BFS connectivity is identical because the
/// driver bridges the loads). Built in net order, deduplicated per list,
/// so the traversal order is deterministic.
std::vector<std::vector<uint32_t>> instance_adjacency(const Design& design) {
  std::vector<std::vector<uint32_t>> adj(design.num_instances());
  auto link = [&](uint32_t a, uint32_t b) {
    if (a == b) return;
    auto& la = adj[a];
    if (std::find(la.begin(), la.end(), b) == la.end()) la.push_back(b);
    auto& lb = adj[b];
    if (std::find(lb.begin(), lb.end(), a) == lb.end()) lb.push_back(a);
  };
  for (const Net& net : design.nets()) {
    uint32_t hub = kUnassigned;
    if (net.driver.valid() && !design.pin(net.driver).is_port()) {
      hub = design.pin(net.driver).inst.index();
    }
    for (PinId load : net.loads) {
      const Pin& p = design.pin(load);
      if (p.is_port()) continue;
      const uint32_t inst = p.inst.index();
      if (hub == kUnassigned) {
        hub = inst;  // port-driven net: first load instance bridges the rest
      } else {
        link(hub, inst);
      }
    }
  }
  return adj;
}

}  // namespace

Partition partition_design(const Design& design,
                           const PartitionOptions& options) {
  MM_SPAN("netlist/partition");
  Partition part;
  const size_t num_insts = design.num_instances();
  const size_t k = std::max<size_t>(
      1, std::min(options.num_blocks, std::max<size_t>(1, num_insts)));
  part.num_blocks_ = k;
  part.inst_block_.assign(num_insts, 0);
  part.pin_block_.assign(design.num_pins(), 0);
  part.boundary_.assign(design.num_pins(), 0);
  part.block_sizes_.assign(k, 0);
  part.block_boundary_.assign(k, 0);

  if (k > 1 && num_insts > 0) {
    const std::vector<std::vector<uint32_t>> adj = instance_adjacency(design);
    std::vector<uint32_t>& assign = part.inst_block_;
    std::fill(assign.begin(), assign.end(), kUnassigned);

    // Seeds: spaced evenly through the id space, rotated by a seed-derived
    // offset so different seeds probe different cuts.
    util::Rng rng(options.seed);
    const size_t offset = rng.below(num_insts);
    std::vector<std::deque<uint32_t>> frontier(k);
    for (size_t b = 0; b < k; ++b) {
      size_t inst = (offset + b * num_insts / k) % num_insts;
      while (assign[inst] != kUnassigned) inst = (inst + 1) % num_insts;
      assign[inst] = static_cast<uint32_t>(b);
      part.block_sizes_[b]++;
      frontier[b].push_back(static_cast<uint32_t>(inst));
    }

    // Round-robin BFS: each round, every block claims at most one new
    // instance from its frontier. `cursor` restarts empty blocks on the
    // lowest-id unassigned instance so disconnected pieces get covered.
    size_t assigned = k;
    size_t cursor = 0;
    while (assigned < num_insts) {
      bool progressed = false;
      for (size_t b = 0; b < k && assigned < num_insts; ++b) {
        // Expand this block's frontier until it claims one instance.
        uint32_t claimed = kUnassigned;
        while (!frontier[b].empty() && claimed == kUnassigned) {
          const uint32_t at = frontier[b].front();
          // Scan `at`'s neighbors for the first unassigned one; keep `at`
          // queued while it may still have unassigned neighbors.
          bool exhausted = true;
          for (uint32_t nb : adj[at]) {
            if (assign[nb] != kUnassigned) continue;
            if (claimed == kUnassigned) {
              claimed = nb;
              exhausted = false;  // re-scan `at` next round
            } else {
              exhausted = false;
              break;
            }
          }
          if (exhausted) frontier[b].pop_front();
        }
        if (claimed == kUnassigned) {
          while (cursor < num_insts && assign[cursor] != kUnassigned) cursor++;
          if (cursor < num_insts) claimed = static_cast<uint32_t>(cursor);
        }
        if (claimed == kUnassigned) continue;
        assign[claimed] = static_cast<uint32_t>(b);
        part.block_sizes_[b]++;
        frontier[b].push_back(claimed);
        assigned++;
        progressed = true;
      }
      if (!progressed) break;  // defensive: cannot happen (cursor fallback)
    }
  } else {
    part.block_sizes_.assign(1, num_insts);
  }

  // Pins inherit their instance's block; ports take the first instance pin
  // on their net (deterministic: driver first, then loads in net order).
  const std::vector<Pin>& pins = design.pins();
  for (size_t i = 0; i < pins.size(); ++i) {
    if (!pins[i].is_port()) {
      part.pin_block_[i] = part.inst_block_[pins[i].inst.index()];
    }
  }
  for (size_t i = 0; i < pins.size(); ++i) {
    if (!pins[i].is_port()) continue;
    uint32_t block = 0;
    if (pins[i].net.valid()) {
      const Net& net = design.net(pins[i].net);
      if (net.driver.valid() && !design.pin(net.driver).is_port()) {
        block = part.pin_block_[net.driver.index()];
      } else {
        for (PinId load : net.loads) {
          if (!design.pin(load).is_port()) {
            block = part.pin_block_[load.index()];
            break;
          }
        }
      }
    }
    part.pin_block_[i] = block;
  }

  // Boundary: every pin of a net whose pins span more than one block.
  for (const Net& net : design.nets()) {
    uint32_t first = kUnassigned;
    bool crossing = false;
    auto visit = [&](PinId pin) {
      if (!pin.valid()) return;
      const uint32_t b = part.pin_block_[pin.index()];
      if (first == kUnassigned) {
        first = b;
      } else if (b != first) {
        crossing = true;
      }
    };
    visit(net.driver);
    for (PinId load : net.loads) visit(load);
    if (!crossing) continue;
    part.num_crossing_nets_++;
    auto mark = [&](PinId pin) {
      if (pin.valid()) part.boundary_[pin.index()] = 1;
    };
    mark(net.driver);
    for (PinId load : net.loads) mark(load);
  }
  for (size_t i = 0; i < pins.size(); ++i) {
    if (part.boundary_[i] == 0) continue;
    part.boundary_pins_.push_back(PinId(static_cast<uint32_t>(i)));
    part.block_boundary_[part.pin_block_[i]]++;
  }

  MM_GAUGE_SET("netlist/partition_blocks", part.num_blocks_);
  MM_GAUGE_SET("netlist/partition_boundary_pins", part.boundary_pins_.size());
  MM_GAUGE_SET("netlist/partition_crossing_nets", part.num_crossing_nets_);
  return part;
}

}  // namespace mm::netlist
