#pragma once
// Boolean function expressions for library cells, in Liberty syntax:
//   "A * B"  "(A + B') ^ C"  "!EN * CK"
// Operators: ! or postfix ' (not), * or & (and), + or | (or), ^ (xor);
// juxtaposition ("A B") also means AND, as Liberty allows.
//
// Evaluation is ternary (0 / 1 / unknown); sensitivity ("can input i still
// toggle the output?") is exact, by enumerating the unknown side inputs
// (capped — beyond the cap it conservatively answers "yes").

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/logic.h"

namespace mm::netlist {

class FuncExpr {
 public:
  /// Parse a Liberty function string. `pin_index` maps a pin name to its
  /// index (return UINT32_MAX for unknown names -> mm::Error).
  static FuncExpr parse(
      std::string_view text,
      const std::function<uint32_t(std::string_view)>& pin_index);

  /// Ternary evaluation given per-pin values (indexed by pin index).
  Logic evaluate(const std::vector<Logic>& values) const;

  /// Exact sensitivity: with the other pins fixed at `values` (kUnknown =
  /// free), can toggling `input` change the output? Enumerates free inputs
  /// up to `max_free_inputs`; above that, conservatively returns true.
  bool depends_on(uint32_t input, const std::vector<Logic>& values,
                  uint32_t max_free_inputs = 12) const;

  /// Pin indices referenced by the expression.
  const std::vector<uint32_t>& support() const { return support_; }

  bool empty() const { return nodes_.empty(); }

 private:
  struct Node {
    enum class Op : uint8_t { kVar, kNot, kAnd, kOr, kXor, kConst0, kConst1 };
    Op op = Op::kConst0;
    uint32_t var = 0;  // kVar: pin index
    int a = -1;        // child indices
    int b = -1;
  };

  Logic eval_node(int index, const std::vector<Logic>& values) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  std::vector<uint32_t> support_;

  friend class FuncParser;
};

}  // namespace mm::netlist
