#pragma once
// Structural (gate-level) Verilog reader and writer — the netlist exchange
// format synthesis hands to timing tools.
//
// Supported subset (what flat synthesized netlists use):
//   - one module per file, non-ANSI or ANSI port declarations,
//   - input / output / wire declarations with comma lists,
//   - cell instances with named connections: CELL inst (.A(n1), .Z(n2));
//   - ordered connections: CELL inst (n1, n2);  (positional = cell pin order)
//   - // line and /* block */ comments,
//   - escaped identifiers (\foo[3] ) for bit-blasted names.
// Not supported (throws mm::Error): buses/vectors (declare bit-blasted
// escaped names instead), hierarchy (flatten first), behavioural constructs,
// assign statements.

#include <string>
#include <string_view>

#include "netlist/design.h"

namespace mm::netlist {

/// Parse structural Verilog into a Design over `lib`. Cell types must exist
/// in the library. Throws mm::Error with line info on anything malformed.
Design read_verilog(std::string_view text, const Library& lib);

/// Emit a Design as structural Verilog (round-trips through read_verilog).
std::string write_verilog(const Design& design);

}  // namespace mm::netlist
