#pragma once
// SDC parser: text -> Sdc, resolved against a Design.
//
// Supported commands (the subset the DAC'15 merging algorithm touches):
//   create_clock, create_generated_clock, set_clock_latency,
//   set_clock_uncertainty, set_clock_transition, set_propagated_clock,
//   set_input_delay, set_output_delay, set_case_analysis,
//   set_disable_timing, set_false_path, set_multicycle_path, set_min_delay,
//   set_max_delay, set_clock_groups, set_clock_sense, set_input_transition,
//   set_drive, set_driving_cell, set_load
// plus the object queries handled by sdc/query.h. Anything else raises
// mm::Error with the offending line.

#include <string_view>

#include "sdc/sdc.h"

namespace mm::sdc {

/// Parse a full SDC file into a fresh Sdc.
Sdc parse_sdc(std::string_view text, const netlist::Design& design);

/// Parse and append into an existing Sdc (e.g. incremental constraints).
void parse_sdc_into(std::string_view text, Sdc& sdc);

}  // namespace mm::sdc
