#include "sdc/parser.h"

#include <charconv>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"
#include "sdc/lexer.h"
#include "sdc/query.h"
#include "util/logger.h"

namespace mm::sdc {
namespace {

// ---------------------------------------------------------------------------
// Argument scanner: splits a command's words into options (with optional
// value words) and positional words, validating against a per-command spec.
// ---------------------------------------------------------------------------

struct OptSpec {
  std::string_view name;
  bool takes_value = false;
};

class Args {
 public:
  Args(const Command& cmd, std::initializer_list<OptSpec> specs) : cmd_(cmd) {
    for (size_t i = 1; i < cmd.words.size(); ++i) {
      const Word& w = cmd.words[i];
      if (w.is_plain() && !w.text.empty() && w.text[0] == '-' &&
          !is_number(w.text)) {
        const OptSpec* spec = find_spec(specs, w.text);
        if (!spec) {
          throw Error(location() + "unknown option '" + w.text + "' for " +
                      command_name());
        }
        if (spec->takes_value) {
          if (i + 1 >= cmd.words.size()) {
            throw Error(location() + "option '" + w.text + "' needs a value");
          }
          options_[spec->name].push_back(&cmd.words[++i]);
        } else {
          options_[spec->name];  // present, no values
        }
      } else {
        positional_.push_back(&w);
      }
    }
  }

  bool has(std::string_view opt) const { return options_.count(opt) > 0; }

  const Word* value(std::string_view opt) const {
    auto it = options_.find(opt);
    if (it == options_.end() || it->second.empty()) return nullptr;
    return it->second.back();
  }

  std::vector<const Word*> values(std::string_view opt) const {
    auto it = options_.find(opt);
    return it == options_.end() ? std::vector<const Word*>{} : it->second;
  }

  const std::vector<const Word*>& positional() const { return positional_; }

  std::string command_name() const {
    return cmd_.words.empty() ? "?" : cmd_.words[0].text;
  }
  std::string location() const {
    return "sdc:" + std::to_string(cmd_.line) + ": ";
  }

 private:
  static bool is_number(std::string_view s) {
    // "-5", "-0.3" are values, not options.
    return s.size() > 1 && (std::isdigit(static_cast<unsigned char>(s[1])) || s[1] == '.');
  }

  static const OptSpec* find_spec(std::initializer_list<OptSpec>& specs,
                                  std::string_view name) {
    for (const OptSpec& s : specs) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  const Command& cmd_;
  std::unordered_map<std::string_view, std::vector<const Word*>> options_;
  std::vector<const Word*> positional_;
};

double word_to_double(const Word& w, const std::string& what) {
  if (!w.is_plain()) throw Error("expected number for " + what);
  char* end = nullptr;
  const double v = std::strtod(w.text.c_str(), &end);
  if (end == w.text.c_str() || *end != '\0') {
    throw Error("bad number '" + w.text + "' for " + what);
  }
  return v;
}

int word_to_int(const Word& w, const std::string& what) {
  if (!w.is_plain()) throw Error("expected integer for " + what);
  int v = 0;
  auto [ptr, ec] = std::from_chars(w.text.data(), w.text.data() + w.text.size(), v);
  if (ec != std::errc{} || ptr != w.text.data() + w.text.size()) {
    throw Error("bad integer '" + w.text + "' for " + what);
  }
  return v;
}

std::vector<double> word_to_double_list(const Word& w, const std::string& what) {
  std::vector<double> out;
  if (w.kind == Word::Kind::kBrace) {
    for (const Word& c : w.children) out.push_back(word_to_double(c, what));
  } else {
    out.push_back(word_to_double(w, what));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(Sdc& sdc)
      : sdc_(sdc), ctx_(&sdc.design(), &sdc) {}

  void run(std::string_view text) {
    for (const Command& cmd : lex_sdc(text)) {
      try {
        dispatch(cmd);
      } catch (const Error& e) {
        // Prefix line info if the handler didn't.
        std::string msg = e.what();
        if (msg.rfind("sdc:", 0) != 0) {
          msg = "sdc:" + std::to_string(cmd.line) + ": " + msg;
        }
        throw Error(msg);
      }
    }
    // Generated clocks whose master appeared later in the file (or is
    // itself generated) get their waveform derived now; iterate for
    // gen-of-gen chains.
    for (size_t round = 0; round < sdc_.num_clocks(); ++round) {
      bool changed = false;
      for (size_t ci = 0; ci < sdc_.num_clocks(); ++ci) {
        sdc::Clock& clock = sdc_.clock_mutable(ClockId(ci));
        if (!clock.is_generated || clock.period > 0.0) continue;
        derive_generated_waveform(clock);
        changed |= clock.period > 0.0;
      }
      if (!changed) break;
    }
  }

 private:
  void dispatch(const Command& cmd) {
    MM_ASSERT(!cmd.words.empty());
    const Word& head = cmd.words[0];
    if (!head.is_plain()) throw Error("command must be a word");
    const std::string& name = head.text;

    if (name == "create_clock") return cmd_create_clock(cmd);
    if (name == "create_generated_clock") return cmd_create_generated_clock(cmd);
    if (name == "set_clock_latency") return cmd_set_clock_latency(cmd);
    if (name == "set_clock_uncertainty") return cmd_set_clock_uncertainty(cmd);
    if (name == "set_clock_transition") return cmd_set_clock_transition(cmd);
    if (name == "set_propagated_clock") return cmd_set_propagated_clock(cmd);
    if (name == "set_input_delay") return cmd_port_delay(cmd, /*is_input=*/true);
    if (name == "set_output_delay") return cmd_port_delay(cmd, /*is_input=*/false);
    if (name == "set_case_analysis") return cmd_set_case_analysis(cmd);
    if (name == "set_disable_timing") return cmd_set_disable_timing(cmd);
    if (name == "set_false_path")
      return cmd_exception(cmd, ExceptionKind::kFalsePath);
    if (name == "set_multicycle_path")
      return cmd_exception(cmd, ExceptionKind::kMulticyclePath);
    if (name == "set_min_delay") return cmd_exception(cmd, ExceptionKind::kMinDelay);
    if (name == "set_max_delay") return cmd_exception(cmd, ExceptionKind::kMaxDelay);
    if (name == "set_clock_groups") return cmd_set_clock_groups(cmd);
    if (name == "set_clock_sense") return cmd_set_clock_sense(cmd);
    if (name == "set_input_transition") return cmd_set_input_transition(cmd);
    if (name == "set_drive") return cmd_set_drive(cmd);
    if (name == "set_driving_cell") return cmd_set_driving_cell(cmd);
    if (name == "set_load") return cmd_set_load(cmd);
    if (name == "set_max_transition")
      return cmd_design_rule(cmd, DesignRule::Kind::kMaxTransition);
    if (name == "set_max_capacitance")
      return cmd_design_rule(cmd, DesignRule::Kind::kMaxCapacitance);

    // Environment/bookkeeping commands that do not affect merging or the
    // timing graph: accepted (validated for basic shape) and recorded as a
    // debug note, matching how sign-off decks are written.
    if (name == "set_units" || name == "set_time_unit" ||
        name == "set_operating_conditions" || name == "set_wire_load_model" ||
        name == "set_wire_load_mode" || name == "set_max_fanout" ||
        name == "set_ideal_network" || name == "set_dont_touch" ||
        name == "set_max_area" || name == "current_design" ||
        name == "set_design_top") {
      MM_DEBUG("sdc:%d: ignoring environment command %s", cmd.line,
               name.c_str());
      return;
    }

    throw Error("unsupported SDC command: " + name);
  }

  // --- object helpers ----------------------------------------------------

  ObjectSet eval_all(const std::vector<const Word*>& words, unsigned accept) {
    ObjectSet out;
    for (const Word* w : words) out.append(ctx_.evaluate(*w, accept));
    return out;
  }

  std::vector<ClockId> eval_clocks(const std::vector<const Word*>& words) {
    return eval_all(words, kAcceptClocks).clocks;
  }

  std::vector<PinId> eval_pins(const std::vector<const Word*>& words) {
    return eval_all(words, kAcceptPins).pins;
  }

  MinMaxFlags minmax_flags(const Args& args) {
    const bool has_min = args.has("-min");
    const bool has_max = args.has("-max");
    if (has_min == has_max) return MinMaxFlags::both();
    return has_min ? MinMaxFlags::min_only() : MinMaxFlags::max_only();
  }

  SetupHoldFlags setup_hold_flags(const Args& args) {
    const bool has_setup = args.has("-setup");
    const bool has_hold = args.has("-hold");
    if (has_setup == has_hold) return SetupHoldFlags::both();
    return has_setup ? SetupHoldFlags::setup_only()
                     : SetupHoldFlags::hold_only();
  }

  // --- command handlers ---------------------------------------------------

  void cmd_create_clock(const Command& cmd) {
    Args args(cmd, {{"-name", true},
                    {"-period", true},
                    {"-waveform", true},
                    {"-add", false},
                    {"-p", true},  // paper shorthand "-p 10"
                    {"-comment", true}});
    Clock clock;
    const Word* period = args.value("-period");
    if (!period) period = args.value("-p");
    if (!period) throw Error("create_clock requires -period");
    clock.period = word_to_double(*period, "-period");
    if (const Word* wf = args.value("-waveform")) {
      clock.waveform = word_to_double_list(*wf, "-waveform");
      if (clock.waveform.size() != 2) {
        throw Error("create_clock -waveform expects {rise fall}");
      }
    }
    clock.add = args.has("-add");
    clock.sources = eval_pins(args.positional());
    if (const Word* name = args.value("-name")) {
      if (!name->is_plain()) throw Error("bad -name");
      clock.name = name->text;
    } else if (!clock.sources.empty()) {
      clock.name = std::string(sdc_.design().pin_name(clock.sources[0]));
    } else {
      throw Error("create_clock requires -name or a source port");
    }
    sdc_.add_clock(std::move(clock));
  }

  void cmd_create_generated_clock(const Command& cmd) {
    Args args(cmd, {{"-name", true},
                    {"-source", true},
                    {"-divide_by", true},
                    {"-multiply_by", true},
                    {"-master_clock", true},
                    {"-add", false},
                    {"-invert", false},
                    {"-comment", true}});
    Clock clock;
    clock.is_generated = true;
    const Word* src = args.value("-source");
    if (!src) throw Error("create_generated_clock requires -source");
    const std::vector<PinId> srcs = eval_pins({src});
    if (srcs.size() != 1)
      throw Error("create_generated_clock -source must name one pin");
    clock.master_source = srcs[0];
    if (const Word* div = args.value("-divide_by"))
      clock.divide_by = word_to_int(*div, "-divide_by");
    if (const Word* mul = args.value("-multiply_by"))
      clock.multiply_by = word_to_int(*mul, "-multiply_by");
    if (clock.divide_by <= 0 || clock.multiply_by <= 0)
      throw Error("generated clock divide/multiply must be positive");
    if (const Word* master = args.value("-master_clock")) {
      clock.master_clock = master->is_plain()
                               ? master->text
                               : std::string();
      if (clock.master_clock.empty()) {
        const std::vector<ClockId> mc = eval_clocks({master});
        if (mc.size() != 1) throw Error("-master_clock must name one clock");
        clock.master_clock = sdc_.clock(mc[0]).name;
      }
    }
    clock.add = args.has("-add");
    clock.sources = eval_pins(args.positional());
    if (const Word* name = args.value("-name")) {
      clock.name = name->text;
    } else if (!clock.sources.empty()) {
      clock.name = std::string(sdc_.design().pin_name(clock.sources[0]));
    } else {
      throw Error("create_generated_clock requires -name or a source pin");
    }
    // Period/waveform resolved from the master at graph-build time; store
    // the division for now. If the master is known already, derive period.
    derive_generated_waveform(clock);
    sdc_.add_clock(std::move(clock));
  }

  void derive_generated_waveform(Clock& clock) {
    const Clock* master = nullptr;
    if (!clock.master_clock.empty()) {
      const ClockId m = sdc_.find_clock(clock.master_clock);
      if (m.valid()) master = &sdc_.clock(m);
    } else {
      // Find a clock whose source is the -source pin (or any clock if only
      // one exists — common simple case).
      for (const Clock& c : sdc_.clocks()) {
        for (PinId s : c.sources) {
          if (s == clock.master_source) {
            master = &c;
            break;
          }
        }
        if (master) break;
      }
      if (!master && sdc_.num_clocks() == 1) master = &sdc_.clock(ClockId(0u));
      if (master) clock.master_clock = master->name;
    }
    if (master) {
      clock.period =
          master->period * clock.divide_by / clock.multiply_by;
      clock.waveform = {0.0, clock.period / 2.0};
    }
  }

  void cmd_set_clock_latency(const Command& cmd) {
    Args args(cmd, {{"-source", false},
                    {"-min", false},
                    {"-max", false},
                    {"-early", false},
                    {"-late", false}});
    const auto& pos = args.positional();
    if (pos.size() < 2)
      throw Error("set_clock_latency requires value and clocks");
    ClockLatency lat;
    lat.value = word_to_double(*pos[0], "latency");
    lat.source = args.has("-source");
    lat.minmax = minmax_flags(args);
    if (args.has("-early") && !args.has("-late")) lat.minmax = MinMaxFlags::min_only();
    if (args.has("-late") && !args.has("-early")) lat.minmax = MinMaxFlags::max_only();
    for (ClockId c : eval_clocks({pos.begin() + 1, pos.end()})) {
      lat.clock = c;
      sdc_.clock_latencies().push_back(lat);
    }
  }

  void cmd_set_clock_uncertainty(const Command& cmd) {
    Args args(cmd, {{"-setup", false}, {"-hold", false}});
    const auto& pos = args.positional();
    if (pos.size() < 2)
      throw Error("set_clock_uncertainty requires value and clocks");
    ClockUncertainty unc;
    unc.value = word_to_double(*pos[0], "uncertainty");
    unc.setup_hold = setup_hold_flags(args);
    for (ClockId c : eval_clocks({pos.begin() + 1, pos.end()})) {
      unc.clock = c;
      sdc_.clock_uncertainties().push_back(unc);
    }
  }

  void cmd_set_clock_transition(const Command& cmd) {
    Args args(cmd, {{"-min", false}, {"-max", false},
                    {"-rise", false}, {"-fall", false}});
    const auto& pos = args.positional();
    if (pos.size() < 2)
      throw Error("set_clock_transition requires value and clocks");
    ClockTransition tr;
    tr.value = word_to_double(*pos[0], "transition");
    tr.minmax = minmax_flags(args);
    for (ClockId c : eval_clocks({pos.begin() + 1, pos.end()})) {
      tr.clock = c;
      sdc_.clock_transitions().push_back(tr);
    }
  }

  void cmd_set_propagated_clock(const Command& cmd) {
    Args args(cmd, {});
    for (ClockId c : eval_clocks(args.positional())) {
      sdc_.clock_mutable(c).propagated = true;
    }
  }

  void cmd_port_delay(const Command& cmd, bool is_input) {
    Args args(cmd, {{"-clock", true},
                    {"-clock_fall", false},
                    {"-add_delay", false},
                    {"-min", false},
                    {"-max", false},
                    {"-rise", false},
                    {"-fall", false},
                    {"-network_latency_included", false},
                    {"-source_latency_included", false}});
    const auto& pos = args.positional();
    if (pos.size() < 2)
      throw Error("set_input/output_delay requires value and ports");
    PortDelay pd;
    pd.is_input = is_input;
    pd.value = word_to_double(*pos[0], "delay");
    pd.clock_fall = args.has("-clock_fall");
    pd.add_delay = args.has("-add_delay");
    pd.minmax = minmax_flags(args);
    if (const Word* clk = args.value("-clock")) {
      const std::vector<ClockId> clocks = eval_clocks({clk});
      if (clocks.size() != 1) throw Error("-clock must name one clock");
      pd.clock = clocks[0];
    }
    for (PinId p : eval_pins({pos.begin() + 1, pos.end()})) {
      if (!sdc_.design().pin(p).is_port()) {
        throw Error("external delay target must be a port: " +
                    std::string(sdc_.design().pin_name(p)));
      }
      pd.port_pin = p;
      sdc_.port_delays().push_back(pd);
    }
  }

  void cmd_set_case_analysis(const Command& cmd) {
    Args args(cmd, {});
    const auto& pos = args.positional();
    if (pos.size() < 2)
      throw Error("set_case_analysis requires value and pins");
    const Word& vw = *pos[0];
    Logic value;
    if (vw.text == "0" || vw.text == "zero") {
      value = Logic::kZero;
    } else if (vw.text == "1" || vw.text == "one") {
      value = Logic::kOne;
    } else {
      throw Error("set_case_analysis value must be 0 or 1, got '" + vw.text + "'");
    }
    for (PinId p : eval_pins({pos.begin() + 1, pos.end()})) {
      sdc_.case_analysis().push_back({p, value});
    }
  }

  void cmd_set_disable_timing(const Command& cmd) {
    Args args(cmd, {{"-from", true}, {"-to", true}});
    const ObjectSet objs = eval_all(args.positional(), kAcceptPins | kAcceptInsts);
    const Word* from = args.value("-from");
    const Word* to = args.value("-to");
    if ((from || to) && objs.insts.empty()) {
      throw Error("set_disable_timing -from/-to requires cell objects");
    }
    for (PinId p : objs.pins) {
      DisableTiming dt;
      dt.pin = p;
      sdc_.disables().push_back(dt);
    }
    for (InstId inst : objs.insts) {
      DisableTiming dt;
      dt.inst = inst;
      const netlist::LibCell& cell = sdc_.design().cell_of(inst);
      if (from) {
        dt.from_lib_pin = cell.find_pin(from->text);
        if (dt.from_lib_pin == UINT32_MAX)
          throw Error("set_disable_timing: no pin '" + from->text + "' on " +
                      cell.name());
      }
      if (to) {
        dt.to_lib_pin = cell.find_pin(to->text);
        if (dt.to_lib_pin == UINT32_MAX)
          throw Error("set_disable_timing: no pin '" + to->text + "' on " +
                      cell.name());
      }
      sdc_.disables().push_back(dt);
    }
  }

  ExceptionPoint eval_exception_point(const std::vector<const Word*>& words,
                                      bool allow_clocks) {
    const unsigned accept =
        kAcceptPins | kAcceptInsts | (allow_clocks ? kAcceptClocks : 0u);
    const ObjectSet objs = eval_all(words, accept);
    ExceptionPoint pt;
    pt.pins = objs.pins;
    pt.clocks = objs.clocks;
    // Expand instance anchors to the instance's pins (SDC -through on a cell
    // means through any pin of the cell).
    for (InstId inst : objs.insts) {
      const netlist::Instance& in = sdc_.design().instance(inst);
      pt.pins.insert(pt.pins.end(), in.pins.begin(), in.pins.end());
    }
    return pt;
  }

  void cmd_exception(const Command& cmd, ExceptionKind kind) {
    Args args(cmd, {{"-from", true},
                    {"-rise_from", true},
                    {"-fall_from", true},
                    {"-to", true},
                    {"-rise_to", true},
                    {"-fall_to", true},
                    {"-through", true},
                    {"-rise_through", true},
                    {"-fall_through", true},
                    {"-setup", false},
                    {"-hold", false},
                    {"-rise", false},
                    {"-fall", false},
                    {"-start", false},
                    {"-end", false},
                    {"-comment", true}});
    Exception ex;
    ex.kind = kind;
    ex.setup_hold = setup_hold_flags(args);
    if (const Word* c = args.value("-comment")) ex.comment = c->text;

    std::vector<const Word*> from_words = args.values("-from");
    for (const Word* w : args.values("-rise_from")) from_words.push_back(w);
    for (const Word* w : args.values("-fall_from")) from_words.push_back(w);
    if (!from_words.empty())
      ex.from = eval_exception_point(from_words, /*allow_clocks=*/true);

    std::vector<const Word*> to_words = args.values("-to");
    for (const Word* w : args.values("-rise_to")) to_words.push_back(w);
    for (const Word* w : args.values("-fall_to")) to_words.push_back(w);
    if (!to_words.empty())
      ex.to = eval_exception_point(to_words, /*allow_clocks=*/true);

    // Each -through occurrence is a separate anchor set, in order.
    for (const Word* w : args.values("-through")) {
      ex.throughs.push_back(eval_exception_point({w}, /*allow_clocks=*/false));
    }
    for (const Word* w : args.values("-rise_through")) {
      ex.throughs.push_back(eval_exception_point({w}, /*allow_clocks=*/false));
    }
    for (const Word* w : args.values("-fall_through")) {
      ex.throughs.push_back(eval_exception_point({w}, /*allow_clocks=*/false));
    }

    const auto& pos = args.positional();
    if (kind == ExceptionKind::kFalsePath) {
      if (!pos.empty()) throw Error("set_false_path takes no positional args");
    } else {
      if (pos.size() != 1)
        throw Error("expected exactly one value for this exception");
      ex.value = word_to_double(*pos[0], "exception value");
      if (kind == ExceptionKind::kMulticyclePath && ex.value < 1) {
        throw Error("multicycle multiplier must be >= 1");
      }
    }
    if (ex.from.empty() && ex.to.empty() && ex.throughs.empty()) {
      throw Error("exception requires at least one of -from/-through/-to");
    }
    sdc_.exceptions().push_back(std::move(ex));
  }

  void cmd_set_clock_groups(const Command& cmd) {
    Args args(cmd, {{"-physically_exclusive", false},
                    {"-logically_exclusive", false},
                    {"-asynchronous", false},
                    {"-allow_paths", false},
                    {"-name", true},
                    {"-group", true}});
    ClockGroups cg;
    const int kinds = int(args.has("-physically_exclusive")) +
                      int(args.has("-logically_exclusive")) +
                      int(args.has("-asynchronous"));
    if (kinds != 1) {
      throw Error(
          "set_clock_groups needs exactly one of -physically_exclusive/"
          "-logically_exclusive/-asynchronous");
    }
    if (args.has("-physically_exclusive"))
      cg.kind = ClockGroupKind::kPhysicallyExclusive;
    else if (args.has("-logically_exclusive"))
      cg.kind = ClockGroupKind::kLogicallyExclusive;
    else
      cg.kind = ClockGroupKind::kAsynchronous;
    if (const Word* name = args.value("-name")) cg.name = name->text;
    for (const Word* g : args.values("-group")) {
      cg.groups.push_back(eval_clocks({g}));
    }
    if (cg.groups.size() < 2) {
      // A single group means "this group vs all other clocks"; normalize by
      // adding the complement group.
      if (cg.groups.size() != 1)
        throw Error("set_clock_groups requires at least one -group");
      std::unordered_set<uint32_t> in_group;
      for (ClockId c : cg.groups[0]) in_group.insert(c.value());
      std::vector<ClockId> rest;
      for (size_t i = 0; i < sdc_.num_clocks(); ++i) {
        if (!in_group.count(static_cast<uint32_t>(i))) rest.push_back(ClockId(i));
      }
      cg.groups.push_back(std::move(rest));
    }
    sdc_.clock_groups().push_back(std::move(cg));
  }

  void cmd_set_clock_sense(const Command& cmd) {
    Args args(cmd, {{"-stop_propagation", false},
                    {"-positive", false},
                    {"-negative", false},
                    {"-clock", true},
                    {"-clocks", true}});
    if (!args.has("-stop_propagation")) {
      throw Error("only set_clock_sense -stop_propagation is supported");
    }
    ClockSenseStop stop;
    const Word* clk = args.value("-clock");
    if (!clk) clk = args.value("-clocks");
    std::vector<ClockId> clocks;
    if (clk) clocks = eval_clocks({clk});
    const std::vector<PinId> pins = eval_pins(args.positional());
    if (pins.empty()) throw Error("set_clock_sense requires pins");
    for (PinId p : pins) {
      stop.pin = p;
      if (clocks.empty()) {
        stop.clock = ClockId();
        sdc_.clock_sense_stops().push_back(stop);
      } else {
        for (ClockId c : clocks) {
          stop.clock = c;
          sdc_.clock_sense_stops().push_back(stop);
        }
      }
    }
  }

  void cmd_set_input_transition(const Command& cmd) {
    Args args(cmd, {{"-min", false}, {"-max", false},
                    {"-rise", false}, {"-fall", false}});
    const auto& pos = args.positional();
    if (pos.size() < 2)
      throw Error("set_input_transition requires value and ports");
    DriveConstraint dc;
    dc.is_transition = true;
    dc.value = word_to_double(*pos[0], "transition");
    dc.minmax = minmax_flags(args);
    for (PinId p : eval_pins({pos.begin() + 1, pos.end()})) {
      dc.port_pin = p;
      sdc_.drives().push_back(dc);
    }
  }

  void cmd_set_drive(const Command& cmd) {
    Args args(cmd, {{"-min", false}, {"-max", false},
                    {"-rise", false}, {"-fall", false}});
    const auto& pos = args.positional();
    if (pos.size() < 2) throw Error("set_drive requires value and ports");
    DriveConstraint dc;
    dc.is_transition = false;
    dc.value = word_to_double(*pos[0], "drive");
    dc.minmax = minmax_flags(args);
    for (PinId p : eval_pins({pos.begin() + 1, pos.end()})) {
      dc.port_pin = p;
      sdc_.drives().push_back(dc);
    }
  }

  void cmd_set_driving_cell(const Command& cmd) {
    Args args(cmd, {{"-lib_cell", true},
                    {"-pin", true},
                    {"-min", false},
                    {"-max", false}});
    const Word* lib_cell = args.value("-lib_cell");
    if (!lib_cell) throw Error("set_driving_cell requires -lib_cell");
    // Model the driving cell by its output-arc drive resistance.
    const netlist::LibCellId cell =
        sdc_.design().library().find_cell(lib_cell->text);
    if (!cell.valid()) {
      throw Error("set_driving_cell: unknown lib cell '" + lib_cell->text + "'");
    }
    double resistance = 0.1;
    const netlist::LibCell& lc = sdc_.design().library().cell(cell);
    if (!lc.arcs().empty()) resistance = lc.arcs().front().resistance;
    DriveConstraint dc;
    dc.is_transition = false;
    dc.value = resistance;
    dc.minmax = minmax_flags(args);
    for (PinId p : eval_pins(args.positional())) {
      dc.port_pin = p;
      sdc_.drives().push_back(dc);
    }
  }

  void cmd_design_rule(const Command& cmd, DesignRule::Kind kind) {
    Args args(cmd, {{"-clock_path", false}, {"-data_path", false}});
    const auto& pos = args.positional();
    if (pos.empty()) throw Error("design rule requires a value");
    DesignRule rule;
    rule.kind = kind;
    rule.value = word_to_double(*pos[0], "design rule value");
    if (pos.size() == 1) {
      // Design-wide (current_design target).
      sdc_.design_rules().push_back(rule);
      return;
    }
    for (PinId p : eval_pins({pos.begin() + 1, pos.end()})) {
      rule.port_pin = p;
      sdc_.design_rules().push_back(rule);
    }
  }

  void cmd_set_load(const Command& cmd) {
    Args args(cmd, {{"-min", false}, {"-max", false},
                    {"-pin_load", false}, {"-wire_load", false}});
    const auto& pos = args.positional();
    if (pos.size() < 2) throw Error("set_load requires value and ports");
    LoadConstraint lc;
    lc.value = word_to_double(*pos[0], "load");
    for (PinId p : eval_pins({pos.begin() + 1, pos.end()})) {
      lc.port_pin = p;
      sdc_.loads().push_back(lc);
    }
  }

  Sdc& sdc_;
  QueryContext ctx_;
};

}  // namespace

Sdc parse_sdc(std::string_view text, const netlist::Design& design) {
  Sdc sdc(&design);
  parse_sdc_into(text, sdc);
  return sdc;
}

void parse_sdc_into(std::string_view text, Sdc& sdc) {
  MM_SPAN("sdc/parse");
  MM_COUNT("sdc/bytes_parsed", text.size());
  Parser(sdc).run(text);
}

}  // namespace mm::sdc
