#include "sdc/lexer.h"

#include "util/error.h"

namespace mm::sdc {
namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Command> run() {
    std::vector<Command> commands;
    Command current;
    current.line = line_;
    while (!eof()) {
      skip_blanks();
      if (eof()) break;
      const char c = peek();
      if (c == '#') {
        skip_comment();
      } else if (c == '\n' || c == ';') {
        advance();
        if (c == '\n') ++line_;
        flush(commands, current);
      } else {
        if (current.words.empty()) current.line = line_;
        current.words.push_back(read_word());
      }
    }
    flush(commands, current);
    return commands;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char advance() { return text_[pos_++]; }

  void skip_blanks() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        advance();
      } else if (c == '\\' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '\n') {
        pos_ += 2;  // line continuation
        ++line_;
      } else {
        break;
      }
    }
  }

  void skip_comment() {
    while (!eof() && peek() != '\n') advance();
  }

  void flush(std::vector<Command>& commands, Command& current) {
    if (!current.words.empty()) {
      commands.push_back(std::move(current));
      current = Command{};
    }
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("sdc:" + std::to_string(line_) + ": " + msg);
  }

  Word read_word() {
    const char c = peek();
    if (c == '{') return read_brace();
    if (c == '[') return read_bracket();
    if (c == '"') return read_quoted();
    return read_plain();
  }

  Word read_plain() {
    Word w;
    w.kind = Word::Kind::kPlain;
    w.line = line_;
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';' ||
          c == ']' || c == '}') {
        break;
      }
      if (c == '[') {
        // In Tcl a bracket can be embedded in a word; the SDC subset we
        // handle treats that as a standalone bracket word, so stop here.
        break;
      }
      if (c == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') break;
      w.text.push_back(advance());
    }
    if (w.text.empty()) {
      // A stray ']' or '}' outside any group; consuming nothing would loop.
      fail(std::string("unexpected '") + peek() + "'");
    }
    return w;
  }

  Word read_quoted() {
    Word w;
    w.kind = Word::Kind::kPlain;
    w.line = line_;
    advance();  // opening quote
    while (true) {
      if (eof()) fail("unterminated quoted string");
      const char c = advance();
      if (c == '"') break;
      if (c == '\n') ++line_;
      if (c == '\\' && !eof()) {
        w.text.push_back(advance());
        continue;
      }
      w.text.push_back(c);
    }
    return w;
  }

  Word read_brace() {
    Word w;
    w.kind = Word::Kind::kBrace;
    w.line = line_;
    advance();  // '{'
    while (true) {
      skip_blanks_multiline();
      if (eof()) fail("unterminated brace group");
      if (peek() == '}') {
        advance();
        break;
      }
      w.children.push_back(read_word());
    }
    return w;
  }

  Word read_bracket() {
    Word w;
    w.kind = Word::Kind::kBracket;
    w.line = line_;
    advance();  // '['
    while (true) {
      skip_blanks_multiline();
      if (eof()) fail("unterminated bracket command");
      if (peek() == ']') {
        advance();
        break;
      }
      w.children.push_back(read_word());
    }
    return w;
  }

  // Inside braces/brackets newlines are just whitespace.
  void skip_blanks_multiline() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        advance();
      } else if (c == '\n') {
        advance();
        ++line_;
      } else if (c == '\\' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
      } else if (c == '#') {
        skip_comment();
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Command> lex_sdc(std::string_view text) {
  return Lexer(text).run();
}

}  // namespace mm::sdc
