#pragma once
// Tcl-flavoured lexer for SDC text. Produces a list of commands; each
// command is a list of words. A word is plain text, a braced literal list
// ({0 5}), or a bracketed sub-command ([get_ports clk*]). Nesting is
// preserved; evaluation happens in the parser.
//
// Supported surface syntax: '#' comments, ';' command separators,
// backslash-newline continuation, double-quoted strings (no interpolation),
// nested braces and brackets.

#include <string>
#include <string_view>
#include <vector>

namespace mm::sdc {

struct Word {
  enum class Kind : uint8_t { kPlain, kBrace, kBracket };

  Kind kind = Kind::kPlain;
  std::string text;            // kPlain: the characters of the word
  std::vector<Word> children;  // kBrace: inner words; kBracket: sub-command
  int line = 0;

  bool is_plain() const { return kind == Kind::kPlain; }
};

struct Command {
  std::vector<Word> words;
  int line = 0;
};

/// Tokenize `text`; throws mm::Error (with line info) on unbalanced
/// braces/brackets/quotes.
std::vector<Command> lex_sdc(std::string_view text);

}  // namespace mm::sdc
