#pragma once
// SDC constraint data model. One `Sdc` instance holds the parsed, resolved
// constraints of one timing mode against a fixed Design. Object references
// are resolved to netlist ids at parse time; clock references are ClockIds
// into this Sdc's clock table.
//
// The command subset is exactly what the DAC'15 mode-merging algorithm
// consumes (paper §3.1.1-3.1.10): clocks and generated clocks, clock
// latency/uncertainty/transition/propagation, external delays, case
// analysis, disable timing, drive/load, clock groups, clock sense, and the
// four path exceptions (false path, multicycle, min/max delay).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/design.h"
#include "util/id.h"

namespace mm::sdc {

using ClockId = Id<struct ClockTag>;
using netlist::InstId;
using netlist::Logic;
using netlist::PinId;

/// Which of min/max analyses a value applies to. Default: both.
struct MinMaxFlags {
  bool min = true;
  bool max = true;

  static MinMaxFlags both() { return {true, true}; }
  static MinMaxFlags min_only() { return {true, false}; }
  static MinMaxFlags max_only() { return {false, true}; }

  friend bool operator==(const MinMaxFlags&, const MinMaxFlags&) = default;
};

/// Setup/hold applicability. Default: both (SDC semantics for exceptions).
struct SetupHoldFlags {
  bool setup = true;
  bool hold = true;

  static SetupHoldFlags both() { return {true, true}; }
  static SetupHoldFlags setup_only() { return {true, false}; }
  static SetupHoldFlags hold_only() { return {false, true}; }

  friend bool operator==(const SetupHoldFlags&, const SetupHoldFlags&) = default;
};

struct Clock {
  std::string name;
  double period = 0.0;
  std::vector<double> waveform;  // rise edge, fall edge (canonical 2 edges)
  std::vector<PinId> sources;    // empty => virtual clock
  bool add = false;              // -add (coexists with other clocks on source)
  bool propagated = false;       // set_propagated_clock applied

  // Generated-clock fields (is_generated == true).
  bool is_generated = false;
  std::string master_clock;  // master clock name (by name: master may be in
                             // the same Sdc; resolved lazily)
  PinId master_source;       // -source pin
  int divide_by = 1;
  int multiply_by = 1;

  bool is_virtual() const { return sources.empty(); }

  /// Same waveform (period + edges) within tolerance.
  bool same_waveform(const Clock& o, double tol = 1e-9) const;
};

struct ClockLatency {
  ClockId clock;
  double value = 0.0;
  MinMaxFlags minmax;
  bool source = false;  // -source (outside-network latency)
};

struct ClockUncertainty {
  ClockId clock;
  double value = 0.0;
  SetupHoldFlags setup_hold;
};

struct ClockTransition {
  ClockId clock;
  double value = 0.0;
  MinMaxFlags minmax;
};

/// set_input_delay / set_output_delay on a port pin.
struct PortDelay {
  bool is_input = true;
  PinId port_pin;
  ClockId clock;  // invalid => unclocked external delay
  bool clock_fall = false;
  bool add_delay = false;
  double value = 0.0;
  MinMaxFlags minmax;

  friend bool operator==(const PortDelay&, const PortDelay&) = default;
};

struct CaseAnalysis {
  PinId pin;
  Logic value = Logic::kZero;
};

/// set_disable_timing: either a whole pin (all arcs touching it), a whole
/// instance, or one from->to arc of an instance.
struct DisableTiming {
  PinId pin;      // valid => pin form
  InstId inst;    // valid (and pin invalid) => instance form
  uint32_t from_lib_pin = UINT32_MAX;  // optional arc restriction on inst
  uint32_t to_lib_pin = UINT32_MAX;
};

enum class ClockGroupKind : uint8_t {
  kPhysicallyExclusive,
  kLogicallyExclusive,
  kAsynchronous,
};

struct ClockGroups {
  ClockGroupKind kind = ClockGroupKind::kPhysicallyExclusive;
  std::string name;
  std::vector<std::vector<ClockId>> groups;
};

/// set_clock_sense -stop_propagation [-clock c] pins
struct ClockSenseStop {
  ClockId clock;  // invalid => applies to all clocks
  PinId pin;
};

enum class ExceptionKind : uint8_t {
  kFalsePath,
  kMulticyclePath,
  kMinDelay,
  kMaxDelay,
};

/// One -from/-through/-to anchor set: pins and/or clocks (clocks allowed on
/// from/to). Instance anchors are expanded to that instance's pins by the
/// parser, so only pins and clocks remain here.
struct ExceptionPoint {
  std::vector<PinId> pins;
  std::vector<ClockId> clocks;

  bool empty() const { return pins.empty() && clocks.empty(); }
};

struct Exception {
  ExceptionKind kind = ExceptionKind::kFalsePath;
  ExceptionPoint from;
  std::vector<ExceptionPoint> throughs;  // in path order
  ExceptionPoint to;
  double value = 0.0;  // MCP multiplier / min-max delay value
  SetupHoldFlags setup_hold;
  std::string comment;  // provenance note (merge engine annotates these)
};

/// set_input_transition / set_drive on an input port.
struct DriveConstraint {
  PinId port_pin;
  bool is_transition = true;  // true: set_input_transition, false: set_drive
  double value = 0.0;
  MinMaxFlags minmax;

  friend bool operator==(const DriveConstraint&, const DriveConstraint&) = default;
};

/// set_load on an output port.
struct LoadConstraint {
  PinId port_pin;
  double value = 0.0;

  friend bool operator==(const LoadConstraint&, const LoadConstraint&) = default;
};

/// Design-rule constraints: set_max_transition / set_max_capacitance,
/// design-wide (port invalid) or per port.
struct DesignRule {
  enum class Kind : uint8_t { kMaxTransition, kMaxCapacitance };
  Kind kind = Kind::kMaxTransition;
  PinId port_pin;  // invalid => applies design-wide (current_design)
  double value = 0.0;

  friend bool operator==(const DesignRule&, const DesignRule&) = default;
};

/// All constraints of one mode, resolved against one Design.
class Sdc {
 public:
  explicit Sdc(const netlist::Design* design) : design_(design) {
    MM_ASSERT(design != nullptr);
  }

  const netlist::Design& design() const { return *design_; }

  // --- clocks ------------------------------------------------------------

  /// Add a clock; throws mm::Error on duplicate name.
  ClockId add_clock(Clock clock);
  ClockId find_clock(std::string_view name) const;
  const Clock& clock(ClockId id) const {
    MM_ASSERT(id.index() < clocks_.size());
    return clocks_[id.index()];
  }
  Clock& clock_mutable(ClockId id) {
    MM_ASSERT(id.index() < clocks_.size());
    return clocks_[id.index()];
  }
  const std::vector<Clock>& clocks() const { return clocks_; }
  size_t num_clocks() const { return clocks_.size(); }

  // --- constraint stores (mutable access for the merge engine) -----------

  std::vector<ClockLatency>& clock_latencies() { return clock_latencies_; }
  const std::vector<ClockLatency>& clock_latencies() const { return clock_latencies_; }

  std::vector<ClockUncertainty>& clock_uncertainties() { return clock_uncertainties_; }
  const std::vector<ClockUncertainty>& clock_uncertainties() const { return clock_uncertainties_; }

  std::vector<ClockTransition>& clock_transitions() { return clock_transitions_; }
  const std::vector<ClockTransition>& clock_transitions() const { return clock_transitions_; }

  std::vector<PortDelay>& port_delays() { return port_delays_; }
  const std::vector<PortDelay>& port_delays() const { return port_delays_; }

  std::vector<CaseAnalysis>& case_analysis() { return case_analysis_; }
  const std::vector<CaseAnalysis>& case_analysis() const { return case_analysis_; }

  std::vector<DisableTiming>& disables() { return disables_; }
  const std::vector<DisableTiming>& disables() const { return disables_; }

  std::vector<ClockGroups>& clock_groups() { return clock_groups_; }
  const std::vector<ClockGroups>& clock_groups() const { return clock_groups_; }

  std::vector<ClockSenseStop>& clock_sense_stops() { return clock_sense_stops_; }
  const std::vector<ClockSenseStop>& clock_sense_stops() const { return clock_sense_stops_; }

  std::vector<Exception>& exceptions() { return exceptions_; }
  const std::vector<Exception>& exceptions() const { return exceptions_; }

  std::vector<DriveConstraint>& drives() { return drives_; }
  const std::vector<DriveConstraint>& drives() const { return drives_; }

  std::vector<LoadConstraint>& loads() { return loads_; }
  const std::vector<LoadConstraint>& loads() const { return loads_; }

  std::vector<DesignRule>& design_rules() { return design_rules_; }
  const std::vector<DesignRule>& design_rules() const { return design_rules_; }

  // --- convenience --------------------------------------------------------

  /// Case-analysis value on a pin (kUnknown if unconstrained).
  Logic case_value(PinId pin) const;

  /// True if the two clocks are declared mutually exclusive (in different
  /// groups of any physically/logically-exclusive set_clock_groups).
  bool clocks_exclusive(ClockId a, ClockId b) const;

  /// True if the two clocks are in different groups of an -asynchronous
  /// set_clock_groups (paths between them are not timed).
  bool clocks_async(ClockId a, ClockId b) const;

 private:
  const netlist::Design* design_;
  std::vector<Clock> clocks_;
  std::vector<ClockLatency> clock_latencies_;
  std::vector<ClockUncertainty> clock_uncertainties_;
  std::vector<ClockTransition> clock_transitions_;
  std::vector<PortDelay> port_delays_;
  std::vector<CaseAnalysis> case_analysis_;
  std::vector<DisableTiming> disables_;
  std::vector<ClockGroups> clock_groups_;
  std::vector<ClockSenseStop> clock_sense_stops_;
  std::vector<Exception> exceptions_;
  std::vector<DriveConstraint> drives_;
  std::vector<LoadConstraint> loads_;
  std::vector<DesignRule> design_rules_;
};

/// A named timing mode: name + constraints.
struct Mode {
  std::string name;
  Sdc sdc;

  Mode(std::string n, const netlist::Design* design)
      : name(std::move(n)), sdc(design) {}
};

}  // namespace mm::sdc
