#pragma once
// SDC writer: serialize an Sdc back to SDC text. Round-tripping a merged
// mode through write_sdc + parse_sdc is part of the validation story — the
// merged constraints the tool emits are real SDC a downstream tool can read.

#include <string>

#include "sdc/sdc.h"

namespace mm::sdc {

std::string write_sdc(const Sdc& sdc);

}  // namespace mm::sdc
