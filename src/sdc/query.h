#pragma once
// SDC object queries: resolve get_ports / get_pins / get_cells / get_clocks
// / all_inputs / all_outputs / all_clocks / all_registers and bare object
// names against a Design (+ the Sdc under construction, for clocks).
// Patterns support '*' and '?' globbing.

#include <string_view>
#include <vector>

#include "sdc/lexer.h"
#include "sdc/sdc.h"

namespace mm::sdc {

/// Result of evaluating an object expression.
struct ObjectSet {
  std::vector<PinId> pins;  // instance pins and port pins
  std::vector<ClockId> clocks;
  std::vector<InstId> insts;

  bool empty() const { return pins.empty() && clocks.empty() && insts.empty(); }
  void append(const ObjectSet& o);
};

/// Bitmask of object kinds a context accepts.
enum ObjectKinds : unsigned {
  kAcceptPins = 1u << 0,
  kAcceptClocks = 1u << 1,
  kAcceptInsts = 1u << 2,
  kAcceptAny = kAcceptPins | kAcceptClocks | kAcceptInsts,
};

class QueryContext {
 public:
  QueryContext(const netlist::Design* design, const Sdc* sdc)
      : design_(design), sdc_(sdc) {
    MM_ASSERT(design && sdc);
  }

  /// Evaluate one word (plain name, brace list, or bracket command) into an
  /// ObjectSet. `accept` narrows bare-name resolution; unknown names or
  /// disallowed kinds throw mm::Error.
  ObjectSet evaluate(const Word& word, unsigned accept) const;

  // Individual query commands (patterns may be globs).
  ObjectSet get_ports(const std::vector<std::string_view>& patterns) const;
  ObjectSet get_pins(const std::vector<std::string_view>& patterns) const;
  ObjectSet get_cells(const std::vector<std::string_view>& patterns) const;
  ObjectSet get_clocks(const std::vector<std::string_view>& patterns) const;
  ObjectSet all_inputs() const;
  ObjectSet all_outputs() const;
  ObjectSet all_clocks() const;
  /// Registers' pins: with clock_pins=true only CP pins, else all pins.
  ObjectSet all_registers(bool clock_pins) const;

 private:
  ObjectSet resolve_name(std::string_view name, unsigned accept) const;

  const netlist::Design* design_;
  const Sdc* sdc_;
};

}  // namespace mm::sdc
