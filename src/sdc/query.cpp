#include "sdc/query.h"

#include <algorithm>

#include "util/glob.h"

namespace mm::sdc {

using netlist::Design;
using netlist::NetId;
using netlist::PinDir;

void ObjectSet::append(const ObjectSet& o) {
  pins.insert(pins.end(), o.pins.begin(), o.pins.end());
  clocks.insert(clocks.end(), o.clocks.begin(), o.clocks.end());
  insts.insert(insts.end(), o.insts.begin(), o.insts.end());
}

ObjectSet QueryContext::get_ports(
    const std::vector<std::string_view>& patterns) const {
  ObjectSet out;
  for (std::string_view pat : patterns) {
    if (!is_glob(pat)) {
      const netlist::PortId p = design_->find_port(pat);
      if (!p.valid()) throw Error("get_ports: no port '" + std::string(pat) + "'");
      out.pins.push_back(design_->port(p).pin);
      continue;
    }
    bool matched = false;
    for (size_t i = 0; i < design_->num_ports(); ++i) {
      const netlist::PortId id(i);
      if (glob_match(pat, design_->port_name(id))) {
        out.pins.push_back(design_->port(id).pin);
        matched = true;
      }
    }
    if (!matched)
      throw Error("get_ports: pattern '" + std::string(pat) + "' matches nothing");
  }
  return out;
}

ObjectSet QueryContext::get_pins(
    const std::vector<std::string_view>& patterns) const {
  ObjectSet out;
  for (std::string_view pat : patterns) {
    if (!is_glob(pat)) {
      const PinId p = design_->find_pin(pat);
      if (!p.valid() || design_->pin(p).is_port()) {
        throw Error("get_pins: no pin '" + std::string(pat) + "'");
      }
      out.pins.push_back(p);
      continue;
    }
    bool matched = false;
    for (size_t i = 0; i < design_->num_pins(); ++i) {
      const PinId id(i);
      if (design_->pin(id).is_port()) continue;
      if (glob_match(pat, design_->pin_name(id))) {
        out.pins.push_back(id);
        matched = true;
      }
    }
    if (!matched)
      throw Error("get_pins: pattern '" + std::string(pat) + "' matches nothing");
  }
  return out;
}

ObjectSet QueryContext::get_cells(
    const std::vector<std::string_view>& patterns) const {
  ObjectSet out;
  for (std::string_view pat : patterns) {
    if (!is_glob(pat)) {
      const InstId id = design_->find_instance(pat);
      if (!id.valid())
        throw Error("get_cells: no cell '" + std::string(pat) + "'");
      out.insts.push_back(id);
      continue;
    }
    bool matched = false;
    for (size_t i = 0; i < design_->num_instances(); ++i) {
      const InstId id(i);
      if (glob_match(pat, design_->inst_name(id))) {
        out.insts.push_back(id);
        matched = true;
      }
    }
    if (!matched)
      throw Error("get_cells: pattern '" + std::string(pat) + "' matches nothing");
  }
  return out;
}

ObjectSet QueryContext::get_clocks(
    const std::vector<std::string_view>& patterns) const {
  ObjectSet out;
  for (std::string_view pat : patterns) {
    if (!is_glob(pat)) {
      const ClockId id = sdc_->find_clock(pat);
      if (!id.valid())
        throw Error("get_clocks: no clock '" + std::string(pat) + "'");
      out.clocks.push_back(id);
      continue;
    }
    bool matched = false;
    for (size_t i = 0; i < sdc_->num_clocks(); ++i) {
      if (glob_match(pat, sdc_->clock(ClockId(i)).name)) {
        out.clocks.push_back(ClockId(i));
        matched = true;
      }
    }
    if (!matched)
      throw Error("get_clocks: pattern '" + std::string(pat) + "' matches nothing");
  }
  return out;
}

ObjectSet QueryContext::all_inputs() const {
  ObjectSet out;
  for (size_t i = 0; i < design_->num_ports(); ++i) {
    const netlist::PortId id(i);
    if (design_->port(id).dir == PinDir::kInput)
      out.pins.push_back(design_->port(id).pin);
  }
  return out;
}

ObjectSet QueryContext::all_outputs() const {
  ObjectSet out;
  for (size_t i = 0; i < design_->num_ports(); ++i) {
    const netlist::PortId id(i);
    if (design_->port(id).dir == PinDir::kOutput)
      out.pins.push_back(design_->port(id).pin);
  }
  return out;
}

ObjectSet QueryContext::all_clocks() const {
  ObjectSet out;
  for (size_t i = 0; i < sdc_->num_clocks(); ++i) out.clocks.push_back(ClockId(i));
  return out;
}

ObjectSet QueryContext::all_registers(bool clock_pins) const {
  ObjectSet out;
  for (size_t i = 0; i < design_->num_instances(); ++i) {
    const InstId id(i);
    const netlist::LibCell& cell = design_->cell_of(id);
    if (!cell.is_sequential()) continue;
    if (clock_pins) {
      for (uint32_t p = 0; p < cell.pins().size(); ++p) {
        if (cell.pins()[p].is_clock)
          out.pins.push_back(design_->instance(id).pins[p]);
      }
    } else {
      out.insts.push_back(id);
    }
  }
  return out;
}

ObjectSet QueryContext::resolve_name(std::string_view name,
                                     unsigned accept) const {
  ObjectSet out;
  if (accept & kAcceptPins) {
    const PinId p = design_->find_pin(name);
    if (p.valid()) {
      out.pins.push_back(p);
      return out;
    }
  }
  if (accept & kAcceptClocks) {
    const ClockId c = sdc_->find_clock(name);
    if (c.valid()) {
      out.clocks.push_back(c);
      return out;
    }
  }
  if (accept & kAcceptInsts) {
    const InstId i = design_->find_instance(name);
    if (i.valid()) {
      out.insts.push_back(i);
      return out;
    }
  }
  throw Error("unknown object: '" + std::string(name) + "'");
}

ObjectSet QueryContext::evaluate(const Word& word, unsigned accept) const {
  switch (word.kind) {
    case Word::Kind::kPlain:
      return resolve_name(word.text, accept);

    case Word::Kind::kBrace: {
      ObjectSet out;
      for (const Word& child : word.children) {
        out.append(evaluate(child, accept));
      }
      return out;
    }

    case Word::Kind::kBracket: {
      if (word.children.empty())
        throw Error("empty [] command in constraint");
      const Word& head = word.children.front();
      // Collect plain/braced argument patterns (option flags like -regexp
      // are not supported; -clock_pins on all_registers is).
      std::vector<std::string_view> patterns;
      bool clock_pins = false;
      std::vector<const Word*> nested;
      for (size_t i = 1; i < word.children.size(); ++i) {
        const Word& arg = word.children[i];
        if (arg.is_plain()) {
          if (arg.text == "-clock_pins") {
            clock_pins = true;
          } else if (!arg.text.empty() && arg.text[0] == '-') {
            throw Error("unsupported query option: " + arg.text);
          } else {
            patterns.push_back(arg.text);
          }
        } else if (arg.kind == Word::Kind::kBrace) {
          for (const Word& c : arg.children) {
            if (c.is_plain()) patterns.push_back(c.text);
            else nested.push_back(&c);
          }
        } else {
          nested.push_back(&arg);
        }
      }

      if (!head.is_plain()) throw Error("malformed [] command");
      const std::string& cmd = head.text;
      ObjectSet out;
      if (cmd == "get_ports" || cmd == "get_port") {
        out = get_ports(patterns);
      } else if (cmd == "get_pins" || cmd == "get_pin") {
        out = get_pins(patterns);
      } else if (cmd == "get_cells" || cmd == "get_cell") {
        out = get_cells(patterns);
      } else if (cmd == "get_clocks" || cmd == "get_clock") {
        out = get_clocks(patterns);
      } else if (cmd == "all_inputs") {
        out = all_inputs();
      } else if (cmd == "all_outputs") {
        out = all_outputs();
      } else if (cmd == "all_clocks") {
        out = all_clocks();
      } else if (cmd == "all_registers") {
        out = all_registers(clock_pins);
      } else if (cmd == "list") {
        for (std::string_view p : patterns)
          out.append(resolve_name(p, accept));
      } else {
        // Lenient fallback matching the paper's shorthand "[and1/Z]":
        // treat every word inside the brackets as an object name.
        out.append(resolve_name(cmd, accept));
        for (std::string_view p : patterns)
          out.append(resolve_name(p, accept));
      }
      // Evaluate nested sub-expressions (e.g. [list [get_ports a] b]).
      for (const Word* n : nested) out.append(evaluate(*n, accept));

      // Enforce acceptance.
      if (!(accept & kAcceptPins) && !out.pins.empty())
        throw Error("pins not allowed in this context");
      if (!(accept & kAcceptClocks) && !out.clocks.empty())
        throw Error("clocks not allowed in this context");
      if (!(accept & kAcceptInsts) && !out.insts.empty())
        throw Error("cells not allowed in this context");
      return out;
    }
  }
  throw Error("unreachable word kind");
}

}  // namespace mm::sdc
