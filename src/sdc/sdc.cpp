#include "sdc/sdc.h"

#include <cmath>

namespace mm::sdc {

bool Clock::same_waveform(const Clock& o, double tol) const {
  if (std::fabs(period - o.period) > tol) return false;
  if (waveform.size() != o.waveform.size()) return false;
  for (size_t i = 0; i < waveform.size(); ++i) {
    if (std::fabs(waveform[i] - o.waveform[i]) > tol) return false;
  }
  return true;
}

ClockId Sdc::add_clock(Clock clock) {
  if (find_clock(clock.name).valid()) {
    throw Error("duplicate clock name: " + clock.name);
  }
  if (clock.waveform.empty()) {
    clock.waveform = {0.0, clock.period / 2.0};
  }
  clocks_.push_back(std::move(clock));
  return ClockId(clocks_.size() - 1);
}

ClockId Sdc::find_clock(std::string_view name) const {
  for (size_t i = 0; i < clocks_.size(); ++i) {
    if (clocks_[i].name == name) return ClockId(i);
  }
  return ClockId();
}

Logic Sdc::case_value(PinId pin) const {
  for (const CaseAnalysis& ca : case_analysis_) {
    if (ca.pin == pin) return ca.value;
  }
  return Logic::kUnknown;
}

namespace {

bool in_different_groups(const std::vector<ClockGroups>& all, ClockId a,
                         ClockId b, bool async_kind) {
  for (const ClockGroups& cg : all) {
    const bool is_async = cg.kind == ClockGroupKind::kAsynchronous;
    if (is_async != async_kind) continue;
    int group_a = -1, group_b = -1;
    for (size_t g = 0; g < cg.groups.size(); ++g) {
      for (ClockId c : cg.groups[g]) {
        if (c == a) group_a = static_cast<int>(g);
        if (c == b) group_b = static_cast<int>(g);
      }
    }
    if (group_a >= 0 && group_b >= 0 && group_a != group_b) return true;
  }
  return false;
}

}  // namespace

bool Sdc::clocks_async(ClockId a, ClockId b) const {
  if (a == b) return false;
  return in_different_groups(clock_groups_, a, b, /*async_kind=*/true);
}

bool Sdc::clocks_exclusive(ClockId a, ClockId b) const {
  if (a == b) return false;
  for (const ClockGroups& cg : clock_groups_) {
    if (cg.kind == ClockGroupKind::kAsynchronous) continue;
    int group_a = -1, group_b = -1;
    for (size_t g = 0; g < cg.groups.size(); ++g) {
      for (ClockId c : cg.groups[g]) {
        if (c == a) group_a = static_cast<int>(g);
        if (c == b) group_b = static_cast<int>(g);
      }
    }
    if (group_a >= 0 && group_b >= 0 && group_a != group_b) return true;
  }
  return false;
}

}  // namespace mm::sdc
