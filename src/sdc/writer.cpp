#include "sdc/writer.h"

#include <sstream>

namespace mm::sdc {
namespace {

class Writer {
 public:
  explicit Writer(const Sdc& sdc) : sdc_(sdc), design_(sdc.design()) {}

  std::string run() {
    write_clocks();
    write_clock_attributes();
    write_port_delays();
    write_case_analysis();
    write_disables();
    write_clock_groups();
    write_clock_sense();
    write_exceptions();
    write_drive_load();
    return out_.str();
  }

 private:
  void write_clocks() {
    for (const Clock& c : sdc_.clocks()) {
      if (c.is_generated) {
        out_ << "create_generated_clock -name " << c.name;
        out_ << " -source " << pin_ref(c.master_source);
        if (c.divide_by != 1) out_ << " -divide_by " << c.divide_by;
        if (c.multiply_by != 1) out_ << " -multiply_by " << c.multiply_by;
        if (!c.master_clock.empty())
          out_ << " -master_clock " << c.master_clock;
        if (c.add) out_ << " -add";
        for (PinId p : c.sources) out_ << ' ' << pin_ref(p);
        out_ << '\n';
      } else {
        out_ << "create_clock -name " << c.name << " -period " << c.period;
        if (c.waveform.size() == 2 &&
            (c.waveform[0] != 0.0 || c.waveform[1] != c.period / 2)) {
          out_ << " -waveform {" << c.waveform[0] << ' ' << c.waveform[1] << '}';
        }
        if (c.add) out_ << " -add";
        for (PinId p : c.sources) out_ << ' ' << pin_ref(p);
        out_ << '\n';
      }
      if (c.propagated) {
        out_ << "set_propagated_clock [get_clocks " << c.name << "]\n";
      }
    }
  }

  void write_clock_attributes() {
    for (const ClockLatency& lat : sdc_.clock_latencies()) {
      out_ << "set_clock_latency";
      if (lat.source) out_ << " -source";
      minmax(lat.minmax);
      out_ << ' ' << lat.value << ' ' << clock_ref(lat.clock) << '\n';
    }
    for (const ClockUncertainty& unc : sdc_.clock_uncertainties()) {
      out_ << "set_clock_uncertainty";
      setup_hold(unc.setup_hold);
      out_ << ' ' << unc.value << ' ' << clock_ref(unc.clock) << '\n';
    }
    for (const ClockTransition& tr : sdc_.clock_transitions()) {
      out_ << "set_clock_transition";
      minmax(tr.minmax);
      out_ << ' ' << tr.value << ' ' << clock_ref(tr.clock) << '\n';
    }
  }

  void write_port_delays() {
    for (const PortDelay& pd : sdc_.port_delays()) {
      out_ << (pd.is_input ? "set_input_delay" : "set_output_delay");
      out_ << ' ' << pd.value;
      if (pd.clock.valid()) out_ << " -clock " << clock_ref(pd.clock);
      if (pd.clock_fall) out_ << " -clock_fall";
      if (pd.add_delay) out_ << " -add_delay";
      minmax(pd.minmax);
      out_ << ' ' << port_ref(pd.port_pin) << '\n';
    }
  }

  void write_case_analysis() {
    for (const CaseAnalysis& ca : sdc_.case_analysis()) {
      out_ << "set_case_analysis "
           << (ca.value == netlist::Logic::kOne ? '1' : '0') << ' '
           << pin_ref(ca.pin) << '\n';
    }
  }

  void write_disables() {
    for (const DisableTiming& dt : sdc_.disables()) {
      out_ << "set_disable_timing ";
      if (dt.pin.valid()) {
        out_ << pin_ref(dt.pin);
      } else {
        const netlist::LibCell& cell = design_.cell_of(dt.inst);
        out_ << "[get_cells " << design_.inst_name(dt.inst) << ']';
        if (dt.from_lib_pin != UINT32_MAX)
          out_ << " -from " << cell.pins()[dt.from_lib_pin].name;
        if (dt.to_lib_pin != UINT32_MAX)
          out_ << " -to " << cell.pins()[dt.to_lib_pin].name;
      }
      out_ << '\n';
    }
  }

  void write_clock_groups() {
    for (const ClockGroups& cg : sdc_.clock_groups()) {
      out_ << "set_clock_groups";
      switch (cg.kind) {
        case ClockGroupKind::kPhysicallyExclusive:
          out_ << " -physically_exclusive";
          break;
        case ClockGroupKind::kLogicallyExclusive:
          out_ << " -logically_exclusive";
          break;
        case ClockGroupKind::kAsynchronous:
          out_ << " -asynchronous";
          break;
      }
      if (!cg.name.empty()) out_ << " -name " << cg.name;
      for (const auto& group : cg.groups) {
        out_ << " -group [get_clocks {";
        for (size_t i = 0; i < group.size(); ++i) {
          if (i) out_ << ' ';
          out_ << sdc_.clock(group[i]).name;
        }
        out_ << "}]";
      }
      out_ << '\n';
    }
  }

  void write_clock_sense() {
    for (const ClockSenseStop& stop : sdc_.clock_sense_stops()) {
      out_ << "set_clock_sense -stop_propagation";
      if (stop.clock.valid()) out_ << " -clock " << clock_ref(stop.clock);
      out_ << ' ' << pin_ref(stop.pin) << '\n';
    }
  }

  void write_exceptions() {
    for (const Exception& ex : sdc_.exceptions()) {
      switch (ex.kind) {
        case ExceptionKind::kFalsePath: out_ << "set_false_path"; break;
        case ExceptionKind::kMulticyclePath:
          out_ << "set_multicycle_path " << ex.value;
          break;
        case ExceptionKind::kMinDelay: out_ << "set_min_delay " << ex.value; break;
        case ExceptionKind::kMaxDelay: out_ << "set_max_delay " << ex.value; break;
      }
      if (ex.setup_hold == SetupHoldFlags::setup_only()) out_ << " -setup";
      if (ex.setup_hold == SetupHoldFlags::hold_only()) out_ << " -hold";
      if (!ex.from.empty()) {
        out_ << " -from ";
        point(ex.from);
      }
      for (const ExceptionPoint& th : ex.throughs) {
        out_ << " -through ";
        point(th);
      }
      if (!ex.to.empty()) {
        out_ << " -to ";
        point(ex.to);
      }
      if (!ex.comment.empty()) out_ << " -comment \"" << ex.comment << '"';
      out_ << '\n';
    }
  }

  void write_drive_load() {
    for (const DriveConstraint& dc : sdc_.drives()) {
      out_ << (dc.is_transition ? "set_input_transition" : "set_drive");
      minmax(dc.minmax);
      out_ << ' ' << dc.value << ' ' << port_ref(dc.port_pin) << '\n';
    }
    for (const LoadConstraint& lc : sdc_.loads()) {
      out_ << "set_load " << lc.value << ' ' << port_ref(lc.port_pin) << '\n';
    }
    for (const DesignRule& rule : sdc_.design_rules()) {
      out_ << (rule.kind == DesignRule::Kind::kMaxTransition
                   ? "set_max_transition "
                   : "set_max_capacitance ")
           << rule.value;
      if (rule.port_pin.valid()) out_ << ' ' << port_ref(rule.port_pin);
      out_ << '\n';
    }
  }

  void minmax(const MinMaxFlags& mm) {
    if (mm == MinMaxFlags::min_only()) out_ << " -min";
    if (mm == MinMaxFlags::max_only()) out_ << " -max";
  }

  void setup_hold(const SetupHoldFlags& sh) {
    if (sh == SetupHoldFlags::setup_only()) out_ << " -setup";
    if (sh == SetupHoldFlags::hold_only()) out_ << " -hold";
  }

  void point(const ExceptionPoint& pt) {
    // Multiple anchors in one -from/-through/-to: emit as a brace list of
    // object references inside [list ...]? SDC allows a single collection;
    // we emit [list ...] which our parser and real tools accept.
    const size_t total = pt.pins.size() + pt.clocks.size();
    if (total > 1) out_ << "[list ";
    bool first = true;
    for (ClockId c : pt.clocks) {
      if (!first) out_ << ' ';
      out_ << clock_ref(c);
      first = false;
    }
    for (PinId p : pt.pins) {
      if (!first) out_ << ' ';
      out_ << pin_ref(p);
      first = false;
    }
    if (total > 1) out_ << ']';
  }

  std::string clock_ref(ClockId c) {
    return "[get_clocks " + sdc_.clock(c).name + "]";
  }

  std::string pin_ref(PinId p) {
    if (!p.valid()) return "{}";
    const std::string name(design_.pin_name(p));
    if (design_.pin(p).is_port()) return "[get_ports " + name + "]";
    return "[get_pins " + name + "]";
  }

  std::string port_ref(PinId p) {
    return "[get_ports " + std::string(design_.pin_name(p)) + "]";
  }

  const Sdc& sdc_;
  const netlist::Design& design_;
  std::ostringstream out_;
};

}  // namespace

std::string write_sdc(const Sdc& sdc) { return Writer(sdc).run(); }

}  // namespace mm::sdc
