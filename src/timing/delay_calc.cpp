#include "timing/delay_calc.h"

#include <cmath>

namespace mm::timing {

namespace {
constexpr double kDefaultInputSlew = 0.08;
constexpr double kNetSlewDegradation = 0.01;
}  // namespace

DelayCalcResult compute_delays(const TimingGraph& graph, const sdc::Sdc& sdc,
                               int iterations, double early_derate) {
  MM_ASSERT(iterations >= 1);
  MM_ASSERT(early_derate > 0.0 && early_derate <= 1.0);
  const netlist::Design& d = graph.design();
  DelayCalcResult result;
  result.arc_delay.assign(graph.num_arcs(), 0.0);
  result.pin_slew.assign(graph.num_nodes(), kDefaultInputSlew);

  // Boundary conditions: input transitions / drives on ports, extra port
  // loads on outputs.
  std::vector<double> extra_load(graph.num_nodes(), 0.0);
  for (const sdc::DriveConstraint& dc : sdc.drives()) {
    if (dc.is_transition) {
      result.pin_slew[dc.port_pin.index()] = dc.value;
    } else {
      // Drive resistance degrades the port's effective slew.
      result.pin_slew[dc.port_pin.index()] =
          kDefaultInputSlew + dc.value * 0.05;
    }
  }
  for (const sdc::LoadConstraint& lc : sdc.loads()) {
    // set_load on an output port: the load hangs on the driving net, i.e.
    // on the net's driver pin.
    const netlist::Pin& pin = d.pin(lc.port_pin);
    if (pin.net.valid()) {
      const netlist::Net& net = d.net(pin.net);
      if (net.driver.valid()) extra_load[net.driver.index()] += lc.value;
    }
  }

  // Forward slew propagation with a mildly nonlinear gate model, repeated
  // `iterations` times from the boundary conditions (models the cost of an
  // effective-capacitance-style iterative delay calculator; the feed-
  // forward fixed point is reached in the first pass, so the result is
  // deterministic).
  const std::vector<double> boundary = result.pin_slew;
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> slew = boundary;
    for (PinId pin : graph.topo_order()) {
      const double in_slew = slew[pin.index()];
      for (ArcId aid : graph.fanout(pin)) {
        const Arc& arc = graph.arc(aid);
        double delay, out_slew;
        if (arc.kind == ArcKind::kNet) {
          // Wire load model: fixed per-fanout delay, slight slew decay.
          delay = arc.intrinsic * (1.0 + 0.05 * in_slew);
          out_slew = in_slew + kNetSlewDegradation;
        } else {
          // Cell arc: the load is whatever the *output* pin drives.
          const double load =
              graph.load_on(arc.to) + extra_load[arc.to.index()];
          delay = arc.intrinsic +
                  arc.resistance * load * (1.0 + 0.25 * std::log1p(in_slew));
          out_slew = 0.55 * in_slew + 0.03 + 0.015 * load +
                     0.01 * std::sqrt(load + 1.0);
        }
        result.arc_delay[aid.index()] = delay;
        // Worst-slew propagation (max over fanin).
        double& sink = slew[arc.to.index()];
        sink = std::max(sink, out_slew);
      }
    }
    result.pin_slew = std::move(slew);
  }
  result.arc_delay_min.resize(result.arc_delay.size());
  for (size_t i = 0; i < result.arc_delay.size(); ++i) {
    result.arc_delay_min[i] = result.arc_delay[i] * early_derate;
  }
  return result;
}

}  // namespace mm::timing
