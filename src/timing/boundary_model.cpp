#include "timing/boundary_model.h"

#include <deque>

#include "obs/obs.h"

namespace mm::timing {

ArrivalEnvelope compute_arrival_envelope(const TimingGraph& graph) {
  MM_SPAN("timing/boundary_envelope");
  const size_t n = graph.num_nodes();
  ArrivalEnvelope env;
  env.min_arrival.assign(n, 0.0);
  env.max_arrival.assign(n, 0.0);
  std::vector<uint8_t> reached(n, 0);
  for (netlist::PinId pin : graph.startpoints()) reached[pin.index()] = 1;
  for (const std::vector<netlist::PinId>& level : graph.levels()) {
    for (netlist::PinId pin : level) {
      if (!reached[pin.index()]) continue;
      const double lo = env.min_arrival[pin.index()];
      const double hi = env.max_arrival[pin.index()];
      for (ArcId aid : graph.fanout(pin)) {
        const Arc& arc = graph.arc(aid);
        if (arc.loop_break) continue;
        const double d =
            arc.intrinsic + arc.resistance * graph.load_on(arc.to);
        const size_t to = arc.to.index();
        if (!reached[to]) {
          reached[to] = 1;
          env.min_arrival[to] = lo + d;
          env.max_arrival[to] = hi + d;
        } else {
          if (lo + d < env.min_arrival[to]) env.min_arrival[to] = lo + d;
          if (hi + d > env.max_arrival[to]) env.max_arrival[to] = hi + d;
        }
      }
    }
  }
  return env;
}

std::vector<BoundaryModel> extract_boundary_models(
    const TimingGraph& graph, const netlist::Partition& partition,
    const Sdc& sdc, const ArrivalEnvelope* envelope) {
  MM_SPAN("timing/boundary_models");
  const netlist::Design& design = graph.design();
  const size_t k = partition.num_blocks();

  ArrivalEnvelope local;
  if (envelope == nullptr) {
    local = compute_arrival_envelope(graph);
    envelope = &local;
  }

  std::vector<BoundaryModel> models(k);
  for (size_t b = 0; b < k; ++b) models[b].block = static_cast<uint32_t>(b);

  for (netlist::PinId pin : partition.boundary_pins()) {
    BoundaryModel& m = models[partition.block_of(pin)];
    m.envelopes.push_back({pin, envelope->min_arrival[pin.index()],
                           envelope->max_arrival[pin.index()]});
  }

  // Clock reachability: BFS from each clock's source pins over non-launch
  // arcs (past a CP->Q arc the clock is data). A clock joins every block it
  // touches. Virtual clocks (no sources) reach no block.
  std::vector<uint8_t> visited(graph.num_nodes());
  std::vector<uint8_t> touches(k);
  for (size_t c = 0; c < sdc.num_clocks(); ++c) {
    const sdc::Clock& clock = sdc.clock(sdc::ClockId(c));
    if (clock.is_virtual()) continue;
    std::fill(visited.begin(), visited.end(), 0);
    std::fill(touches.begin(), touches.end(), 0);
    std::deque<netlist::PinId> queue;
    for (netlist::PinId src : clock.sources) {
      if (src.index() >= graph.num_nodes() || visited[src.index()]) continue;
      visited[src.index()] = 1;
      queue.push_back(src);
    }
    while (!queue.empty()) {
      const netlist::PinId at = queue.front();
      queue.pop_front();
      touches[partition.block_of(at)] = 1;
      for (ArcId aid : graph.fanout(at)) {
        const Arc& arc = graph.arc(aid);
        if (arc.kind == ArcKind::kLaunch) continue;
        if (visited[arc.to.index()]) continue;
        visited[arc.to.index()] = 1;
        queue.push_back(arc.to);
      }
    }
    for (size_t b = 0; b < k; ++b) {
      if (touches[b]) models[b].clocks.push_back(sdc::ClockId(c));
    }
  }

  // Crossing exceptions: anchor pins in more than one block, or anchors
  // that name no pin at all (clock-only / design-wide — they bind to no
  // block, so every block's stitch must see them).
  const std::vector<sdc::Exception>& exceptions = sdc.exceptions();
  for (size_t e = 0; e < exceptions.size(); ++e) {
    const sdc::Exception& ex = exceptions[e];
    uint32_t first = UINT32_MAX;
    bool crossing = false;
    bool any_pin = false;
    auto visit = [&](const sdc::ExceptionPoint& pt) {
      for (netlist::PinId pin : pt.pins) {
        if (!pin.valid()) continue;
        any_pin = true;
        const uint32_t b = partition.block_of(pin);
        if (first == UINT32_MAX) {
          first = b;
        } else if (b != first) {
          crossing = true;
        }
      }
    };
    visit(ex.from);
    for (const sdc::ExceptionPoint& pt : ex.throughs) visit(pt);
    visit(ex.to);
    if (!any_pin) {
      for (size_t b = 0; b < k; ++b) {
        models[b].crossing_exceptions.push_back(static_cast<uint32_t>(e));
      }
    } else if (crossing) {
      std::vector<uint8_t> in(k, 0);
      auto mark = [&](const sdc::ExceptionPoint& pt) {
        for (netlist::PinId pin : pt.pins) {
          if (pin.valid()) in[partition.block_of(pin)] = 1;
        }
      };
      mark(ex.from);
      for (const sdc::ExceptionPoint& pt : ex.throughs) mark(pt);
      mark(ex.to);
      for (size_t b = 0; b < k; ++b) {
        if (in[b]) {
          models[b].crossing_exceptions.push_back(static_cast<uint32_t>(e));
        }
      }
    }
  }

  return models;
}

}  // namespace mm::timing
