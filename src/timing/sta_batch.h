#pragma once
// Level-parallel, multi-mode-batched timing propagation — the STA substrate
// behind clique validation and multi-mode analysis.
//
// A BatchPropagator runs the same tag semantics as timing::Propagator
// (relationships.h) for N modes ("lanes") of one TimingGraph in a single
// levelized graph walk instead of N independent topological sweeps:
//
//   - The graph's level buckets (TimingGraph::levels()) are processed in
//     order; within a level, node batches fan out over a util::ThreadPool.
//     Every node's tag slot is written only by the worker that owns the
//     node and read only from strictly lower levels, so results are
//     byte-identical for any thread count (own-slot writes, deterministic
//     level order).
//   - Tags are *pull*-based: a node merges the tags of its fan-in arcs'
//     sources, which are settled by the level barrier. Per-lane tag
//     content, dedup (min/max arrival window merge per key) and endpoint
//     resolution match the serial engine exactly.
//   - Tags carry a lane *mask*: modes of one mergeable clique are similar
//     by construction, so the same (launch clock, exception progress,
//     startpoint, arrival window) tag usually flows through many lanes at
//     once. One shared tag + a 128-bit mask replaces up to 128 per-mode
//     tags — the batched walk's work scales with the number of *distinct*
//     tag groups, not with the lane count. Masks split automatically where
//     lanes diverge (disabled arcs, different delays or windows).
//   - Lanes are partitioned into *exception classes*: lanes whose tracked
//     -from/-through machinery (CompiledExceptions) is content-identical
//     share one exception-progress table and may share tags; lanes in
//     different classes never share a mask (a progress id is only
//     meaningful within its class's table).
//   - Per-endpoint worst setup/hold slack and latest arrival live in flat
//     structure-of-arrays vectors indexed [endpoint * num_lanes + lane]
//     (the "timing lanes"), replacing the per-mode endpoint->slack maps.
//   - In the validation configuration (state sets only, no arrivals) lanes
//     are further grouped into *resolution blocks*: lanes with identical
//     exception lists, clock-exclusivity relations and active endpoints
//     share one endpoint sweep and one physical relation map, splitting
//     copy-on-write wherever their tags or capture clocks diverge. A clique
//     of near-identical modes resolves once, not once per mode.
//
// The serial single-mode engine stays the byte-parity reference: callers
// keep it behind MergeOptions::use_batched_sta, the same discipline as
// use_interned_keys. See docs/STA.md for the full substrate guide.

#include <memory>
#include <mutex>
#include <vector>

#include "timing/relationships.h"
#include "util/thread_pool.h"

namespace mm::timing {

/// One mode's view of the shared graph inside a batch. `mode` and
/// `exceptions` must outlive the propagator; `arc_delays`/`arc_delays_min`
/// are optional per-arc delay vectors from a delay-calculation run (nullptr
/// = the zero-slew closed-form model, shared across lanes).
struct StaLane {
  const ModeGraph* mode = nullptr;
  const CompiledExceptions* exceptions = nullptr;
  const std::vector<double>* arc_delays = nullptr;
  const std::vector<double>* arc_delays_min = nullptr;
};

/// Fixed-width lane set; one batch handles at most kMaxBatchLanes lanes
/// (callers chunk larger mode sets).
struct LaneMask {
  static constexpr size_t kWords = 2;
  uint64_t w[kWords] = {0, 0};

  void set(size_t i) { w[i >> 6] |= uint64_t{1} << (i & 63); }
  void clear(size_t i) { w[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool test(size_t i) const { return (w[i >> 6] >> (i & 63)) & 1; }
  bool any() const { return (w[0] | w[1]) != 0; }
  size_t count() const {
    return static_cast<size_t>(__builtin_popcountll(w[0]) +
                               __builtin_popcountll(w[1]));
  }
  LaneMask operator&(const LaneMask& o) const {
    return {{w[0] & o.w[0], w[1] & o.w[1]}};
  }
  LaneMask& operator&=(const LaneMask& o) {
    w[0] &= o.w[0];
    w[1] &= o.w[1];
    return *this;
  }
  LaneMask& operator|=(const LaneMask& o) {
    w[0] |= o.w[0];
    w[1] |= o.w[1];
    return *this;
  }
  LaneMask operator~() const { return {{~w[0], ~w[1]}}; }
  friend bool operator==(const LaneMask&, const LaneMask&) = default;
};

inline constexpr size_t kMaxBatchLanes = 64 * LaneMask::kWords;

struct BatchOptions {
  /// Track startpoints in tag/relation keys (pass-2-style granularity).
  bool track_startpoints = false;
  /// Compute arrival windows into slacks at endpoints (STA); off for
  /// pure state-set comparison (equivalence validation).
  bool compute_arrivals = true;
  /// Also resolve hold-side states (and hold slacks when arrivals are on).
  bool analyze_hold = false;
  /// Pool to fan level batches and per-lane resolution over; nullptr runs
  /// everything on the calling thread.
  ThreadPool* pool = nullptr;
  /// Minimum nodes per task inside a level (queue-round-trip amortization,
  /// same idiom as the mergeability pair sweep).
  size_t min_grain = 64;
};

class BatchPropagator {
 public:
  /// `lanes.size()` must be in [1, kMaxBatchLanes]. The graph must be the
  /// one every lane's ModeGraph was built from.
  BatchPropagator(const TimingGraph& graph, std::vector<StaLane> lanes);
  ~BatchPropagator();

  BatchPropagator(const BatchPropagator&) = delete;
  BatchPropagator& operator=(const BatchPropagator&) = delete;

  void run(const BatchOptions& options = {});

  size_t num_lanes() const { return lanes_.size(); }
  /// Distinct exception classes the lanes were partitioned into.
  size_t num_classes() const { return classes_.size(); }

  /// Per-lane relation table (content-identical to a serial Propagator run
  /// of that lane's mode under the same options). In the validation
  /// configuration (no arrivals, no startpoint tracking) lanes that proved
  /// resolution-equivalent share one physical map — see
  /// num_resolution_blocks().
  const RelationMap& relations(size_t lane) const {
    return results_[lane_result_[lane]];
  }

  /// Number of distinct relation tables actually materialized. Lanes whose
  /// exception lists, clock-exclusivity relations, active endpoints,
  /// capture-clock sets and endpoint tags all match produce byte-identical
  /// relation maps, so the resolver builds one map per such *resolution
  /// block* instead of one per lane (== num_lanes() outside the validation
  /// configuration, where per-lane slack output forces per-lane maps).
  size_t num_resolution_blocks() const { return results_.size(); }

  // --- SoA timing lanes ------------------------------------------------
  // Flat [endpoint_index * num_lanes + lane] vectors over
  // graph.endpoints(); kNoSlack / kNoArrival where the lane times nothing
  // at that endpoint. Filled when options.compute_arrivals.

  static constexpr float kNoSlack = 1e30f;
  static constexpr float kNoArrival = -1e30f;

  const std::vector<float>& slack_lanes() const { return slack_; }
  const std::vector<float>& hold_slack_lanes() const { return hold_slack_; }
  const std::vector<float>& arrival_lanes() const { return arrival_; }

  /// Worst setup slack of `lane` at the i-th structural endpoint
  /// (graph.endpoints()[i]).
  float slack_at(size_t endpoint_index, size_t lane) const {
    return slack_[endpoint_index * lanes_.size() + lane];
  }

  /// Per-lane worst-slack map in the serial StaResult format (endpoint pin
  /// id -> slack), for drop-in comparison with run_sta.
  std::unordered_map<uint32_t, float> worst_slack_by_endpoint(size_t lane) const;
  std::unordered_map<uint32_t, float> worst_hold_slack_by_endpoint(
      size_t lane) const;

  /// Total tag-group entries vs the per-lane tag total they stand for —
  /// the sharing factor the batched walk wins by.
  size_t shared_tag_groups() const { return stat_groups_; }
  size_t lane_tag_total() const { return stat_lane_tags_; }

 private:
  struct BTag {
    sdc::ClockId launch;
    PinId startpoint;
    uint32_t progress = 0;  // id in the tag's class's progress table
    uint16_t cls = 0;
    float amin = 0.0f;
    float amax = 0.0f;
    LaneMask mask;
  };

  struct ExceptionClass {
    const CompiledExceptions* rep = nullptr;  // representative lane's machinery
    uint32_t num_tracked = 0;
    std::unique_ptr<ProgressTable> table;
    std::mutex mutex;  // guards table during the parallel walk
  };

  /// One delay bucket of an arc: the enabled lanes whose (late, early)
  /// delays on this arc are bit-identical. Most arcs have exactly one
  /// bucket (closed-form delays are lane-independent; per-lane delay
  /// vectors of similar modes mostly agree), so a tag crosses the arc in
  /// one masked insert instead of one per lane.
  struct ArcGroup {
    LaneMask mask;
    double delay = 0.0;
    double delay_min = 0.0;
  };

  void build_classes();
  void build_arc_groups();
  void seed_lane(size_t lane, const BatchOptions& options);
  void pull_node(PinId node);
  uint32_t advance_progress(uint16_t cls, uint32_t progress, PinId node);
  void insert(std::vector<BTag>& slot, uint16_t cls, sdc::ClockId launch,
              PinId startpoint, uint32_t progress, float amin, float amax,
              LaneMask mask);
  void resolve_lane(size_t lane, const BatchOptions& options);
  void resolve_shared(const BatchOptions& options);
  void fill_soa_lanes(const BatchOptions& options);

  const TimingGraph* graph_;
  std::vector<StaLane> lanes_;
  std::vector<uint16_t> lane_class_;
  std::vector<std::unique_ptr<ExceptionClass>> classes_;
  std::vector<ArcGroup> arc_groups_;      // delay buckets, flat by arc
  std::vector<uint32_t> arc_group_begin_; // num_arcs + 1 offsets into above
  std::vector<std::vector<BTag>> slots_;  // per-node shared tag groups
  std::vector<RelationMap> results_;      // one per resolution block
  std::vector<uint32_t> lane_result_;     // lane -> index into results_
  std::vector<float> slack_;
  std::vector<float> hold_slack_;
  std::vector<float> arrival_;
  bool track_startpoints_ = false;
  bool ran_ = false;
  size_t stat_groups_ = 0;
  size_t stat_lane_tags_ = 0;
};

}  // namespace mm::timing
