#pragma once
// Per-block boundary timing models for hierarchical sharded merging
// (docs/SHARDING.md; in the spirit of the boundary-model extraction papers
// in PAPERS.md — arXiv 1705.02610 / 1705.04981).
//
// For one (block, mode) pair a BoundaryModel summarizes everything the
// top-level stitch pass needs to reason about the block without touching
// its interior:
//
//   - the block's boundary pins with a structural min/max arrival envelope
//     (one levelized forward sweep over slew-independent arc delays:
//     intrinsic + resistance * load; a conservative bound that is
//     mode-independent and therefore shared across modes of one design),
//   - the clocks of the mode that structurally reach the block (BFS from
//     each clock's source pins over non-launch arcs — launch arcs turn
//     clock into data at Q),
//   - the indices of the mode's timing exceptions whose anchor pins cross
//     the cut (anchors in more than one block, or clock-only anchors that
//     bind to no block).
//
// The model speaks ClockIds and exception indices of its own Sdc; the
// merge layer interns these into CanonicalKeyTable ids (merge/keys.h) so
// models from different blocks and modes compare cheaply.

#include <cstdint>
#include <vector>

#include "netlist/partition.h"
#include "sdc/sdc.h"
#include "timing/graph.h"

namespace mm::timing {

using sdc::Sdc;

struct BoundaryEnvelope {
  netlist::PinId pin;
  double min_arrival = 0.0;  // earliest structural arrival at the pin
  double max_arrival = 0.0;  // latest structural arrival at the pin
};

/// One block's boundary summary for one mode.
struct BoundaryModel {
  uint32_t block = 0;
  /// The block's boundary pins (ascending pin id) with arrival envelopes.
  std::vector<BoundaryEnvelope> envelopes;
  /// Clocks of the mode that structurally reach any pin of the block.
  std::vector<sdc::ClockId> clocks;
  /// Indices into sdc.exceptions() whose anchors cross this block's cut.
  std::vector<uint32_t> crossing_exceptions;
};

/// Structural min/max arrival per pin: one forward sweep over the level
/// buckets with arc delay = intrinsic + resistance * load_on(to). Shared
/// across modes; sliced per block by extract_boundary_models.
struct ArrivalEnvelope {
  std::vector<double> min_arrival;  // indexed by PinId
  std::vector<double> max_arrival;
};

ArrivalEnvelope compute_arrival_envelope(const TimingGraph& graph);

/// Extract one BoundaryModel per block for `sdc` (size =
/// partition.num_blocks()). `envelope` may be null, in which case it is
/// computed internally; pass a precomputed one to share it across modes.
std::vector<BoundaryModel> extract_boundary_models(
    const TimingGraph& graph, const netlist::Partition& partition,
    const Sdc& sdc, const ArrivalEnvelope* envelope = nullptr);

}  // namespace mm::timing
