#pragma once
// Per-mode view of a TimingGraph: the result of applying one Sdc's
// case analysis (ternary constant propagation), set_disable_timing and
// clock-network propagation to the mode-independent graph.
//
// This is the structure both the STA engine and the mode-merging engine
// consume: "which arcs are alive", "which clocks reach which pins and with
// what latency", "which pins are constants".

#include <vector>

#include "netlist/libcell.h"
#include "sdc/sdc.h"
#include "timing/graph.h"

namespace mm::timing {

using netlist::Logic;
using sdc::ClockId;
using sdc::Sdc;

/// A clock arriving at a clock-network pin.
struct ClockArrival {
  ClockId clock;
  double latency = 0.0;  // network latency from the clock source to this pin

  friend bool operator==(const ClockArrival&, const ClockArrival&) = default;
};

class ModeGraph {
 public:
  /// Build the per-mode view. Both graph and sdc must outlive this object.
  ModeGraph(const TimingGraph& graph, const Sdc& sdc);

  const TimingGraph& graph() const { return *graph_; }
  const Sdc& sdc() const { return *sdc_; }

  // --- constants -----------------------------------------------------------

  Logic constant(PinId pin) const { return constants_[pin.index()]; }
  bool is_constant(PinId pin) const { return constants_[pin.index()] != Logic::kUnknown; }

  // --- arc state -----------------------------------------------------------

  /// Arc alive: not disabled by set_disable_timing, not a loop break, not
  /// killed by constants (constant source / constant sink / blocked by a
  /// controlling side-input).
  bool arc_enabled(ArcId arc) const { return arc_enabled_[arc.index()]; }

  // --- clock network -------------------------------------------------------

  /// Clocks present on a pin (clock-network propagation). Sorted by clock id.
  const std::vector<ClockArrival>& clocks_on(PinId pin) const {
    return clocks_on_[pin.index()];
  }
  bool clock_on(PinId pin, ClockId clock) const;
  /// Pin is part of the clock network (some clock reaches it).
  bool in_clock_network(PinId pin) const { return !clocks_on_[pin.index()].empty(); }

  // --- mode-level startpoints/endpoints -------------------------------------

  /// Register clock pins that receive >= 1 clock in this mode, plus input
  /// ports carrying a set_input_delay.
  const std::vector<PinId>& active_startpoints() const { return active_startpoints_; }
  /// Check data pins whose register receives >= 1 clock, plus output ports
  /// carrying a set_output_delay.
  const std::vector<PinId>& active_endpoints() const { return active_endpoints_; }

  /// For a check data pin: the clocks capturing at its register's CP pin.
  /// For an output port: the -clock of its set_output_delay entries.
  std::vector<ClockArrival> capture_clocks_at(PinId endpoint) const;
  /// Allocation-free variant: clears `out` and fills it with the same list
  /// (the batched engine calls this once per endpoint per lane).
  void capture_clocks_at(PinId endpoint, std::vector<ClockArrival>& out) const;

  /// Source latency (set_clock_latency -source) of a clock, max flavour.
  double source_latency(ClockId clock) const;
  /// Ideal network latency for a non-propagated clock (set_clock_latency
  /// without -source), 0 if unset.
  double ideal_network_latency(ClockId clock) const;
  /// Clock uncertainty (setup flavour) for a capture clock.
  double uncertainty(ClockId clock) const;
  /// Clock uncertainty, hold flavour.
  double hold_uncertainty(ClockId clock) const;

 private:
  void propagate_constants();
  void apply_disables();
  void kill_blocked_arcs();
  void propagate_clocks();
  void find_active_points();

  const TimingGraph* graph_;
  const Sdc* sdc_;

  std::vector<Logic> constants_;
  std::vector<uint8_t> arc_enabled_;
  std::vector<std::vector<ClockArrival>> clocks_on_;
  std::vector<PinId> active_startpoints_;
  std::vector<PinId> active_endpoints_;
};

}  // namespace mm::timing
