#pragma once
// Static timing analysis driver: run relationship propagation with arrivals
// over one mode and summarize per-endpoint worst setup slacks. This is the
// engine the Table-6 benchmark times in "individual modes" vs "merged mode"
// configuration.

#include <string>
#include <unordered_map>
#include <vector>

#include "timing/relationships.h"

namespace mm::timing {

struct StaResult {
  /// endpoint pin id -> worst setup slack.
  std::unordered_map<uint32_t, float> endpoint_slack;
  /// endpoint pin id -> worst hold slack (when hold analysis is enabled).
  std::unordered_map<uint32_t, float> endpoint_hold_slack;
  double wns = 0.0;         // worst negative setup slack (0 if all positive)
  double tns = 0.0;         // total negative setup slack
  double whs = 0.0;         // worst negative hold slack
  size_t num_endpoints = 0;
  double runtime_seconds = 0.0;
  bool tag_overflow = false;
};

/// Run full STA on one mode. The TimingGraph must be built from sdc's
/// design. `analyze_hold` adds min-path (hold) analysis.
StaResult run_sta(const TimingGraph& graph, const Sdc& sdc,
                  bool analyze_hold = false);

/// Run STA for every mode and keep, per endpoint, the worst slack over all
/// modes — the reference QoR against which the merged mode is judged
/// (paper §4, "worst slacks on all the endpoints ... merged vs individual").
StaResult run_sta_multi(const TimingGraph& graph,
                        const std::vector<const Sdc*>& modes);

/// Conformity metric from Table 6: the percentage of endpoints whose merged
/// slack deviates from the individual worst slack by at most
/// `tolerance_fraction` of the endpoint's capture clock period.
/// Endpoints timed in only one of the two results count as non-conforming.
double conformity(const StaResult& individual, const StaResult& merged,
                  const TimingGraph& graph, const Sdc& merged_sdc,
                  double tolerance_fraction = 0.01);

}  // namespace mm::timing
