#pragma once
// Static timing analysis driver: run relationship propagation with arrivals
// over one mode and summarize per-endpoint worst setup slacks. This is the
// engine the Table-6 benchmark times in "individual modes" vs "merged mode"
// configuration.

#include <string>
#include <unordered_map>
#include <vector>

#include "timing/relationships.h"

namespace mm {
class ThreadPool;
}

namespace mm::timing {

struct StaResult {
  /// endpoint pin id -> worst setup slack.
  std::unordered_map<uint32_t, float> endpoint_slack;
  /// endpoint pin id -> worst hold slack (when hold analysis is enabled).
  std::unordered_map<uint32_t, float> endpoint_hold_slack;
  double wns = 0.0;         // worst negative setup slack (0 if all positive)
  double tns = 0.0;         // total negative setup slack
  double whs = 0.0;         // worst negative hold slack
  size_t num_endpoints = 0;
  double runtime_seconds = 0.0;
  bool tag_overflow = false;
};

/// Run full STA on one mode. The TimingGraph must be built from sdc's
/// design. `analyze_hold` adds min-path (hold) analysis.
StaResult run_sta(const TimingGraph& graph, const Sdc& sdc,
                  bool analyze_hold = false);

/// Run STA for every mode and keep, per endpoint, the worst slack over all
/// modes — the reference QoR against which the merged mode is judged
/// (paper §4, "worst slacks on all the endpoints ... merged vs individual").
StaResult run_sta_multi(const TimingGraph& graph,
                        const std::vector<const Sdc*>& modes);

/// Multi-mode STA through the batched level-parallel engine (sta_batch.h):
/// all modes propagate as lanes of shared BatchPropagator walks (chunked at
/// kMaxBatchLanes) instead of independent per-mode runs. Slacks are
/// byte-identical to run_sta per mode; `run_sta_multi` above stays the
/// serial reference.
struct BatchStaResult {
  std::vector<StaResult> per_mode;  // one per input mode, in order
  StaResult combined;               // min-merged like run_sta_multi
  size_t tag_groups = 0;            // shared tag entries over all walks
  size_t lane_tags = 0;             // per-lane tags those entries stand for
};
BatchStaResult run_sta_batch(const TimingGraph& graph,
                             const std::vector<const Sdc*>& modes,
                             bool analyze_hold = false,
                             ThreadPool* pool = nullptr);

/// Conformity metric from Table 6: the percentage of endpoints whose merged
/// slack deviates from the individual worst slack by at most
/// `tolerance_fraction` of the endpoint's capture clock period.
/// Endpoints timed in only one of the two results count as non-conforming.
double conformity(const StaResult& individual, const StaResult& merged,
                  const TimingGraph& graph, const Sdc& merged_sdc,
                  double tolerance_fraction = 0.01);

}  // namespace mm::timing
