#include "timing/sta_batch.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/obs.h"
#include "util/logger.h"

namespace mm::timing {

namespace {

// Clock-relation math identical to the serial Propagator (relationships.cpp);
// shared here as free functions of the lane's Sdc.

double setup_relation(const Sdc& sdc, ClockId launch, ClockId capture,
                      double mcp_mult) {
  constexpr double kEps = 1e-9;
  const sdc::Clock& cap = sdc.clock(capture);
  const double cap_edge = cap.waveform.empty() ? 0.0 : cap.waveform[0];
  double launch_edge = 0.0;
  if (launch.valid()) {
    const sdc::Clock& l = sdc.clock(launch);
    launch_edge = l.waveform.empty() ? 0.0 : l.waveform[0];
  }
  double k = std::floor((launch_edge - cap_edge) / cap.period + kEps) + 1.0;
  if (k < 0) k = std::ceil(-(cap_edge - launch_edge) / cap.period);
  double tc = cap_edge + k * cap.period;
  if (tc <= launch_edge + kEps) tc += cap.period;
  if (mcp_mult > 1.0) tc += (mcp_mult - 1.0) * cap.period;
  return tc - launch_edge;
}

double hold_relation(const Sdc& sdc, ClockId launch, ClockId capture,
                     double mcp_shift) {
  constexpr double kEps = 1e-9;
  const sdc::Clock& cap = sdc.clock(capture);
  const double cap_edge = cap.waveform.empty() ? 0.0 : cap.waveform[0];
  double launch_edge = 0.0;
  if (launch.valid()) {
    const sdc::Clock& l = sdc.clock(launch);
    launch_edge = l.waveform.empty() ? 0.0 : l.waveform[0];
  }
  const double k = std::floor((launch_edge - cap_edge) / cap.period + kEps);
  double tc = cap_edge + k * cap.period;
  if (mcp_shift > 0.0) tc -= mcp_shift * cap.period;
  return tc - launch_edge;
}

/// The tracked-exception *shape* of one lane: for every tracked slot in
/// order, the ordered list of its -through pin sets (each sorted). Lanes
/// with equal signatures run identical progress machinery — same slot
/// layout, same advancement at every pin — so their tags can share one
/// progress table and one mask. -from pins/clocks are deliberately NOT part
/// of the signature: they only act at seed time (initial_progress, computed
/// per lane) and at endpoint resolution (per lane), never during the walk.
using TrackedSignature = std::vector<std::vector<std::vector<uint32_t>>>;

TrackedSignature tracked_signature(const CompiledExceptions& exc) {
  TrackedSignature sig;
  for (const CompiledException& e : exc.all()) {
    if (!e.tracked) continue;
    MM_ASSERT_MSG(e.track_slot == sig.size(), "track slots not in order");
    std::vector<std::vector<uint32_t>> sets;
    sets.reserve(e.throughs.size());
    for (const auto& t : e.throughs) {
      std::vector<uint32_t> pins(t.begin(), t.end());
      std::sort(pins.begin(), pins.end());
      sets.push_back(std::move(pins));
    }
    sig.push_back(std::move(sets));
  }
  return sig;
}

}  // namespace

BatchPropagator::BatchPropagator(const TimingGraph& graph,
                                 std::vector<StaLane> lanes)
    : graph_(&graph), lanes_(std::move(lanes)) {
  MM_ASSERT_MSG(!lanes_.empty() && lanes_.size() <= kMaxBatchLanes,
                "lane count out of range");
  for (const StaLane& lane : lanes_) {
    MM_ASSERT_MSG(lane.mode && lane.exceptions, "lane missing mode/exceptions");
    MM_ASSERT_MSG(&lane.mode->graph() == graph_, "lane built on another graph");
  }
  slots_.resize(graph_->num_nodes());
  results_.resize(lanes_.size());
  lane_result_.resize(lanes_.size());
  for (size_t l = 0; l < lanes_.size(); ++l) {
    lane_result_[l] = static_cast<uint32_t>(l);
  }
  build_classes();
  build_arc_groups();
}

BatchPropagator::~BatchPropagator() = default;

void BatchPropagator::build_classes() {
  lane_class_.resize(lanes_.size());
  std::vector<TrackedSignature> sigs;
  for (size_t l = 0; l < lanes_.size(); ++l) {
    TrackedSignature sig = tracked_signature(*lanes_[l].exceptions);
    size_t cls = sigs.size();
    for (size_t c = 0; c < sigs.size(); ++c) {
      if (sigs[c] == sig) {
        cls = c;
        break;
      }
    }
    if (cls == sigs.size()) {
      sigs.push_back(std::move(sig));
      auto ec = std::make_unique<ExceptionClass>();
      ec->rep = lanes_[l].exceptions;
      ec->num_tracked = lanes_[l].exceptions->num_tracked();
      ec->table = std::make_unique<ProgressTable>(ec->num_tracked);
      classes_.push_back(std::move(ec));
    }
    lane_class_[l] = static_cast<uint16_t>(cls);
  }
}

void BatchPropagator::build_arc_groups() {
  const size_t num_arcs = graph_->num_arcs();
  arc_group_begin_.assign(num_arcs + 1, 0);
  arc_groups_.reserve(num_arcs);
  std::vector<ArcGroup> local;
  for (size_t ai = 0; ai < num_arcs; ++ai) {
    const ArcId aid(ai);
    const Arc& arc = graph_->arc(aid);
    const double closed =
        arc.kind == ArcKind::kNet
            ? arc.intrinsic
            : arc.intrinsic + arc.resistance * graph_->load_on(arc.to);
    local.clear();
    for (size_t l = 0; l < lanes_.size(); ++l) {
      if (!lanes_[l].mode->arc_enabled(aid)) continue;
      const double d =
          lanes_[l].arc_delays ? (*lanes_[l].arc_delays)[ai] : closed;
      const double dm =
          lanes_[l].arc_delays_min ? (*lanes_[l].arc_delays_min)[ai] : d;
      bool placed = false;
      for (ArcGroup& g : local) {
        if (g.delay == d && g.delay_min == dm) {
          g.mask.set(l);
          placed = true;
          break;
        }
      }
      if (!placed) {
        ArcGroup g;
        g.mask.set(l);
        g.delay = d;
        g.delay_min = dm;
        local.push_back(g);
      }
    }
    arc_group_begin_[ai] = static_cast<uint32_t>(arc_groups_.size());
    arc_groups_.insert(arc_groups_.end(), local.begin(), local.end());
  }
  arc_group_begin_[num_arcs] = static_cast<uint32_t>(arc_groups_.size());
}

void BatchPropagator::run(const BatchOptions& options) {
  MM_ASSERT_MSG(!ran_, "BatchPropagator::run is single-shot");
  ran_ = true;
  track_startpoints_ = options.track_startpoints;

  MM_SPAN_HOT("sta/batch_propagation");

  // Seeds first (serial; the per-lane singleton masks coalesce on their own
  // wherever lanes agree), then the level-major walk, then per-lane
  // resolution off the settled shared slots.
  {
    MM_SPAN_HOT("sta/batch_seed");
    for (size_t l = 0; l < lanes_.size(); ++l) seed_lane(l, options);
  }

  size_t nodes_propagated = 0;
  {
    MM_SPAN_HOT("sta/batch_walk");
    for (const std::vector<PinId>& level : graph_->levels()) {
      if (options.pool && level.size() > 1) {
        options.pool->parallel_for(level.size(), options.min_grain,
                                   [&](size_t i) { pull_node(level[i]); });
      } else {
        for (PinId pin : level) pull_node(pin);
      }
      for (PinId pin : level) {
        if (!slots_[pin.index()].empty()) ++nodes_propagated;
      }
    }
  }

  {
    MM_SPAN_HOT("sta/batch_resolve");
    // Per-lane slack output (arrivals or tracked startpoints) needs one map
    // per lane; the validation configuration resolves per resolution block.
    if (options.track_startpoints || options.compute_arrivals) {
      if (options.pool && lanes_.size() > 1) {
        options.pool->parallel_for(lanes_.size(),
                                   [&](size_t l) { resolve_lane(l, options); });
      } else {
        for (size_t l = 0; l < lanes_.size(); ++l) resolve_lane(l, options);
      }
    } else {
      resolve_shared(options);
    }
  }

  if (options.compute_arrivals) fill_soa_lanes(options);

  stat_groups_ = 0;
  stat_lane_tags_ = 0;
  for (const auto& slot : slots_) {
    stat_groups_ += slot.size();
    for (const BTag& t : slot) stat_lane_tags_ += t.mask.count();
  }
  MM_COUNT("sta/levels", graph_->num_levels());
  MM_COUNT("sta/lanes", lanes_.size());
  MM_COUNT("sta/nodes_propagated", nodes_propagated);
  MM_COUNT("sta/tag_groups", stat_groups_);
  MM_COUNT("sta/lane_tags", stat_lane_tags_);
  MM_COUNT("sta/resolution_blocks", results_.size());
  MM_COUNT("sta/batch_propagations", 1);
}

void BatchPropagator::seed_lane(size_t lane, const BatchOptions& options) {
  const StaLane& ln = lanes_[lane];
  const ModeGraph& mode = *ln.mode;
  const Sdc& sdc = mode.sdc();
  const netlist::Design& d = graph_->design();
  const uint16_t cls = lane_class_[lane];
  ProgressTable& table = *classes_[cls]->table;
  LaneMask mask;
  mask.set(lane);

  // Pins anchored by a tracked exception (-from pins or any -through set).
  // A startpoint outside this set gets a progress vector that depends only
  // on the launch clock, so its interned id is cached per clock instead of
  // recomputed per (startpoint, clock).
  std::unordered_set<uint32_t> anchored;
  for (const CompiledException& e : ln.exceptions->all()) {
    if (!e.tracked) continue;
    for (uint32_t p : e.from_pins) anchored.insert(p);
    for (const auto& t : e.throughs) anchored.insert(t.begin(), t.end());
  }
  std::vector<std::pair<ClockId, uint32_t>> base;
  auto seed_progress = [&](PinId sp, ClockId clock) -> uint32_t {
    if (anchored.count(sp.value())) {
      return table.intern(ln.exceptions->initial_progress(sp, clock));
    }
    for (const auto& [c, id] : base) {
      if (c == clock) return id;
    }
    const uint32_t id = table.intern(ln.exceptions->initial_progress(sp, clock));
    base.emplace_back(clock, id);
    return id;
  };

  for (PinId sp : mode.active_startpoints()) {
    const PinId tracked_sp = options.track_startpoints ? sp : PinId();
    if (d.pin(sp).is_port()) {
      // Input port: one tag per set_input_delay entry.
      for (const sdc::PortDelay& pd : sdc.port_delays()) {
        if (!pd.is_input || pd.port_pin != sp) continue;
        double edge = 0.0;
        if (pd.clock.valid()) {
          const sdc::Clock& c = sdc.clock(pd.clock);
          edge = pd.clock_fall && c.waveform.size() > 1 ? c.waveform[1]
                 : c.waveform.empty()                   ? 0.0
                                                        : c.waveform[0];
        }
        const float arrival = static_cast<float>(edge + pd.value);
        const uint32_t prog = seed_progress(sp, pd.clock);
        insert(slots_[sp.index()], cls, pd.clock, tracked_sp, prog, arrival,
               arrival, mask);
      }
      continue;
    }

    // Register clock pin: one tag per arriving clock.
    for (const ClockArrival& ca : mode.clocks_on(sp)) {
      const sdc::Clock& clock = sdc.clock(ca.clock);
      const double latency =
          mode.source_latency(ca.clock) +
          (clock.propagated ? ca.latency : mode.ideal_network_latency(ca.clock));
      const double edge = clock.waveform.empty() ? 0.0 : clock.waveform[0];
      const float arrival = static_cast<float>(latency + edge);
      const uint32_t prog = seed_progress(sp, ca.clock);
      insert(slots_[sp.index()], cls, ca.clock, tracked_sp, prog, arrival,
             arrival, mask);
    }
  }
}

uint32_t BatchPropagator::advance_progress(uint16_t cls, uint32_t progress,
                                           PinId node) {
  ExceptionClass& ec = *classes_[cls];
  if (ec.num_tracked == 0) return progress;
  if (ec.rep->throughs_at(node).empty()) return progress;
  std::lock_guard<std::mutex> lock(ec.mutex);
  std::vector<uint8_t> vec = ec.table->get(progress);
  if (ec.rep->advance(vec, node)) return ec.table->intern(vec);
  return progress;
}

void BatchPropagator::pull_node(PinId node) {
  std::vector<BTag>& slot = slots_[node.index()];
  for (ArcId aid : graph_->fanin(node)) {
    const uint32_t gb = arc_group_begin_[aid.index()];
    const uint32_t ge = arc_group_begin_[aid.index() + 1];
    if (gb == ge) continue;  // arc enabled in no lane
    const Arc& arc = graph_->arc(aid);
    // Register CP pins carry tags only into their launch arcs (the clock
    // becomes data at Q) — mode-independent, precomputed on the graph.
    if (graph_->has_launch_fanout(arc.from) && arc.kind != ArcKind::kLaunch)
      continue;
    const std::vector<BTag>& src = slots_[arc.from.index()];
    // `src` is settled: arc.from sits on a strictly lower level, finished
    // before this level's barrier. Only `slot` (our own) is written here.
    for (const BTag& tag : src) {
      for (uint32_t gi = gb; gi < ge; ++gi) {
        const ArcGroup& g = arc_groups_[gi];
        const LaneMask m = tag.mask & g.mask;
        if (!m.any()) continue;
        const uint32_t prog = advance_progress(tag.cls, tag.progress, node);
        insert(slot, tag.cls, tag.launch, tag.startpoint, prog,
               tag.amin + static_cast<float>(g.delay_min),
               tag.amax + static_cast<float>(g.delay), m);
      }
    }
  }
}

void BatchPropagator::insert(std::vector<BTag>& slot, uint16_t cls,
                             sdc::ClockId launch, PinId startpoint,
                             uint32_t progress, float amin, float amax,
                             LaneMask mask) {
  // Per-lane this must behave exactly like the serial insert_tag: each lane
  // of `mask` min/max-merges into its (cls, launch, progress, startpoint)
  // entry, or starts one. The invariant is that a lane sits in at most one
  // entry per key, so entries *split* when only part of their lanes absorb
  // a new arrival window, and split-off / unmatched pieces *coalesce* with
  // any entry holding bit-identical windows.
  struct Piece {
    LaneMask mask;
    float amin;
    float amax;
  };
  Piece pending[kMaxBatchLanes + 1];  // <=1 piece per overlapped entry + rest
  size_t num_pending = 0;
  LaneMask remaining = mask;

  const size_t existing = slot.size();
  for (size_t i = 0; i < existing && remaining.any(); ++i) {
    BTag& e = slot[i];
    if (e.cls != cls || e.launch != launch || e.progress != progress ||
        e.startpoint != startpoint) {
      continue;
    }
    const LaneMask ov = e.mask & remaining;
    if (!ov.any()) continue;
    const float namin = std::min(e.amin, amin);
    const float namax = std::max(e.amax, amax);
    if (namin == e.amin && namax == e.amax) {
      // Entry already covers the new window: overlap lanes are done.
    } else if (ov == e.mask) {
      // Every lane of the entry takes the merged window: update in place.
      e.amin = namin;
      e.amax = namax;
    } else {
      // Only some of the entry's lanes merge: they leave the entry and
      // re-home into an entry with exactly the merged window.
      e.mask &= ~ov;
      pending[num_pending++] = {ov, namin, namax};
    }
    remaining &= ~ov;
  }
  if (remaining.any()) pending[num_pending++] = {remaining, amin, amax};

  for (size_t p = 0; p < num_pending; ++p) {
    const Piece& piece = pending[p];
    bool placed = false;
    for (size_t i = 0; i < slot.size(); ++i) {
      BTag& e = slot[i];
      if (e.cls == cls && e.launch == launch && e.progress == progress &&
          e.startpoint == startpoint && e.amin == piece.amin &&
          e.amax == piece.amax) {
        e.mask |= piece.mask;
        placed = true;
        break;
      }
    }
    if (!placed) {
      BTag t;
      t.launch = launch;
      t.startpoint = startpoint;
      t.progress = progress;
      t.cls = cls;
      t.amin = piece.amin;
      t.amax = piece.amax;
      t.mask = piece.mask;
      slot.push_back(t);
    }
  }
}

void BatchPropagator::resolve_lane(size_t lane, const BatchOptions& options) {
  // Verbatim port of the serial resolve_endpoint, reading this lane's tags
  // out of the shared slots (entries whose mask has our bit). The class
  // progress tables are frozen after the walk, so get() is lock-free here.
  const StaLane& ln = lanes_[lane];
  const ModeGraph& mode = *ln.mode;
  const Sdc& sdc = mode.sdc();
  const netlist::Design& d = graph_->design();
  const ProgressTable& table = *classes_[lane_class_[lane]]->table;
  RelationMap& relations = results_[lane];

  // Per-(endpoint, capture) resolution memo: split arrival windows leave
  // several slot entries with the same (progress, launch), which resolve to
  // the same state pair — one exception scan covers them all.
  struct Resolved {
    uint32_t progress;
    sdc::ClockId launch;
    PathState setup;
    PathState hold;
  };
  std::vector<const BTag*> own;
  std::vector<Resolved> memo;
  std::vector<ClockArrival> captures;
  relations.reserve(mode.active_endpoints().size());

  // Capture-side clock constants are linear scans of the mode's sdc lists;
  // hoist them out of the endpoint loop (one lookup per clock per lane).
  const size_t num_clocks = sdc.num_clocks();
  std::vector<double> src_lat(num_clocks), ideal_lat(num_clocks),
      setup_unc(num_clocks), hold_unc_of(num_clocks);
  for (size_t c = 0; c < num_clocks; ++c) {
    const ClockId id(static_cast<uint32_t>(c));
    src_lat[c] = mode.source_latency(id);
    ideal_lat[c] = mode.ideal_network_latency(id);
    setup_unc[c] = mode.uncertainty(id);
    hold_unc_of[c] = mode.hold_uncertainty(id);
  }

  for (PinId endpoint : mode.active_endpoints()) {
    const std::vector<BTag>& slot = slots_[endpoint.index()];
    if (slot.empty()) continue;
    own.clear();
    for (const BTag& tag : slot) {
      if (tag.mask.test(lane)) own.push_back(&tag);
    }
    if (own.empty()) continue;

    const bool is_port = d.pin(endpoint).is_port();
    double setup_time = 0.0;
    double hold_time = 0.0;
    if (!is_port) {
      for (uint32_t ci : graph_->checks_at(endpoint)) {
        setup_time = std::max(setup_time, graph_->checks()[ci].setup);
        hold_time = std::max(hold_time, graph_->checks()[ci].hold);
      }
    }

    mode.capture_clocks_at(endpoint, captures);
    for (const ClockArrival& cap : captures) {
      const sdc::Clock& cap_clock = sdc.clock(cap.clock);
      const double cap_lat =
          src_lat[cap.clock.index()] +
          (cap_clock.propagated ? cap.latency : ideal_lat[cap.clock.index()]);
      const double unc = setup_unc[cap.clock.index()];

      double output_delay = 0.0;
      if (is_port) {
        for (const sdc::PortDelay& pd : sdc.port_delays()) {
          if (!pd.is_input && pd.port_pin == endpoint &&
              pd.clock == cap.clock && pd.minmax.max) {
            output_delay = std::max(output_delay, pd.value);
          }
        }
      }

      memo.clear();
      for (const BTag* tagp : own) {
        const BTag& tag = *tagp;
        PathState state;
        PathState hold_state;
        bool memoized = false;
        for (const Resolved& r : memo) {
          if (r.progress == tag.progress && r.launch == tag.launch) {
            state = r.setup;
            hold_state = r.hold;
            memoized = true;
            break;
          }
        }
        if (!memoized) {
          const bool exclusive =
              tag.launch.valid() &&
              (sdc.clocks_exclusive(tag.launch, cap.clock) ||
               sdc.clocks_async(tag.launch, cap.clock));
          if (exclusive) {
            state = PathState::false_path();
            hold_state = PathState::false_path();
          } else {
            ln.exceptions->resolve_both(table.get(tag.progress), tag.launch,
                                        endpoint, cap.clock, &state,
                                        &hold_state);
          }
          memo.push_back({tag.progress, tag.launch, state, hold_state});
        }

        RelationKey key;
        key.endpoint = endpoint;
        key.startpoint = tag.startpoint;
        key.launch = tag.launch;
        key.capture = cap.clock;
        RelationData& data = relations[key];
        data.states.insert(state);

        if (options.analyze_hold) {
          data.hold_states.insert(hold_state);
          if (options.compute_arrivals && hold_state.is_timed()) {
            const double hold_unc = hold_unc_of[cap.clock.index()];
            double slack;
            if (hold_state.kind == StateKind::kMinDelay) {
              slack = tag.amin - hold_state.value;
            } else {
              const double shift =
                  hold_state.kind == StateKind::kMcp ? hold_state.value : 0.0;
              const double tc =
                  hold_relation(sdc, tag.launch, cap.clock, shift);
              double launch_edge = 0.0;
              if (tag.launch.valid()) {
                const sdc::Clock& l = sdc.clock(tag.launch);
                launch_edge = l.waveform.empty() ? 0.0 : l.waveform[0];
              }
              const double required =
                  launch_edge + tc + cap_lat + hold_unc + hold_time;
              slack = tag.amin - required;
            }
            data.worst_hold_slack =
                std::min(data.worst_hold_slack, static_cast<float>(slack));
          }
        }

        if (options.compute_arrivals && state.is_timed()) {
          double slack;
          if (state.kind == StateKind::kMaxDelay) {
            slack = state.value - tag.amax;
          } else {
            const double mult =
                state.kind == StateKind::kMcp ? state.value : 1.0;
            const double tc = setup_relation(sdc, tag.launch, cap.clock, mult);
            double launch_edge = 0.0;
            if (tag.launch.valid()) {
              const sdc::Clock& l = sdc.clock(tag.launch);
              launch_edge = l.waveform.empty() ? 0.0 : l.waveform[0];
            }
            const double required =
                launch_edge + tc + cap_lat - unc - setup_time - output_delay;
            slack = required - tag.amax;
          }
          if (slack < data.worst_slack) {
            data.worst_slack = static_cast<float>(slack);
            data.worst_capture = cap.clock;
          }
          data.worst_arrival = std::max(data.worst_arrival, tag.amax);
        }
      }
    }
  }
}

void BatchPropagator::resolve_shared(const BatchOptions& options) {
  // Validation-configuration resolver. Relation content here is state sets
  // only, which depend on (endpoint, capture clock, launch clock, progress,
  // exception list, clock exclusivity) — never on arrival windows or
  // per-lane clock latencies. Lanes with identical resolution inputs
  // therefore produce byte-identical relation maps, so the sweep builds one
  // map per *resolution block* of lanes instead of one per lane; a clique
  // of near-identical modes — the validate workload — resolves once.
  //
  // Lanes are first grouped statically by (exception class, exception-list
  // content, clock-exclusivity matrix, active-endpoint list). During the
  // endpoint sweep a block splits copy-on-write wherever its lanes diverge
  // dynamically: a tag entry covering only part of the block, or capture
  // clocks that differ at an endpoint. Worst case (no two lanes ever agree)
  // degenerates to per-lane maps, i.e. the resolve_lane cost.
  const size_t L = lanes_.size();

  // Launch x capture forced-false-path matrix per lane (set_clock_groups
  // -logically_exclusive / -asynchronous), the only exclusivity input the
  // per-tag resolution reads.
  std::vector<std::vector<uint8_t>> excl(L);
  for (size_t l = 0; l < L; ++l) {
    const Sdc& sdc = lanes_[l].mode->sdc();
    const size_t n = sdc.num_clocks();
    excl[l].assign(n * n, 0);
    for (size_t a = 0; a < n; ++a) {
      const ClockId ca(static_cast<uint32_t>(a));
      for (size_t b = 0; b < n; ++b) {
        const ClockId cb(static_cast<uint32_t>(b));
        excl[l][a * n + b] =
            sdc.clocks_exclusive(ca, cb) || sdc.clocks_async(ca, cb);
      }
    }
  }

  struct Block {
    LaneMask mask;
    size_t rep = 0;  // lowest lane in mask
    RelationMap map;
    std::vector<ClockArrival> captures;  // rep's captures, current endpoint
  };
  std::vector<std::vector<std::unique_ptr<Block>>> groups;
  std::vector<size_t> group_rep;
  for (size_t l = 0; l < L; ++l) {
    size_t g = groups.size();
    for (size_t i = 0; i < groups.size(); ++i) {
      const size_t r = group_rep[i];
      if (lane_class_[l] == lane_class_[r] && excl[l] == excl[r] &&
          lanes_[l].mode->active_endpoints() ==
              lanes_[r].mode->active_endpoints() &&
          lanes_[l].exceptions->all() == lanes_[r].exceptions->all()) {
        g = i;
        break;
      }
    }
    if (g == groups.size()) {
      groups.emplace_back();
      auto blk = std::make_unique<Block>();
      blk->rep = l;
      groups.back().push_back(std::move(blk));
      group_rep.push_back(l);
    }
    groups[g].front()->mask.set(l);
  }

  auto first_lane = [](const LaneMask& m) -> size_t {
    for (size_t w = 0; w < LaneMask::kWords; ++w) {
      if (m.w[w]) return w * 64 + static_cast<size_t>(__builtin_ctzll(m.w[w]));
    }
    return 0;
  };
  auto same_capture_clocks = [](const std::vector<ClockArrival>& a,
                                const std::vector<ClockArrival>& b) {
    // Latencies are slack-side inputs; only the clock id sequence matters
    // for state sets.
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].clock != b[i].clock) return false;
    }
    return true;
  };

  auto sweep = [&](size_t g) {
    std::vector<std::unique_ptr<Block>>& blocks = groups[g];
    const size_t rep = group_rep[g];
    // The whole group shares one resolution context (checked statically);
    // splits change tag/capture membership, never this context.
    const std::vector<PinId>& endpoints = lanes_[rep].mode->active_endpoints();
    const CompiledExceptions& exc = *lanes_[rep].exceptions;
    const ProgressTable& table = *classes_[lane_class_[rep]]->table;
    const std::vector<uint8_t>& excl_rep = excl[rep];
    const size_t num_clocks = lanes_[rep].mode->sdc().num_clocks();

    struct Resolved {
      uint32_t progress;
      sdc::ClockId launch;
    };
    std::vector<Resolved> memo;
    std::vector<const BTag*> own;
    std::vector<ClockArrival> caps;
    blocks.front()->map.reserve(endpoints.size());

    for (PinId endpoint : endpoints) {
      const std::vector<BTag>& slot = slots_[endpoint.index()];
      if (slot.empty()) continue;

      // 1. Split blocks until each is fully inside or outside every entry.
      // A piece split off before any of this endpoint's inserts copies a
      // map identical to its sibling's up to the previous endpoint.
      for (const BTag& tag : slot) {
        for (size_t b = 0, nb = blocks.size(); b < nb; ++b) {
          Block& blk = *blocks[b];
          const LaneMask in = blk.mask & tag.mask;
          if (!in.any() || in == blk.mask) continue;
          auto out = std::make_unique<Block>();
          out->mask = blk.mask & ~tag.mask;
          out->rep = first_lane(out->mask);
          out->map = blk.map;
          blk.mask = in;
          blk.rep = first_lane(in);
          blocks.push_back(std::move(out));
        }
      }

      // 2. Split blocks whose lanes disagree on the capture-clock sequence
      // at this endpoint; splinters with pairwise-equal captures regroup.
      for (size_t b = 0, nb = blocks.size(); b < nb; ++b) {
        Block& blk = *blocks[b];
        lanes_[blk.rep].mode->capture_clocks_at(endpoint, blk.captures);
        if (blk.mask.count() == 1) continue;
        const size_t splinter_begin = blocks.size();
        for (size_t l = blk.rep + 1; l < L; ++l) {
          if (!blk.mask.test(l)) continue;
          lanes_[l].mode->capture_clocks_at(endpoint, caps);
          if (same_capture_clocks(caps, blk.captures)) continue;
          Block* home = nullptr;
          for (size_t s = splinter_begin; s < blocks.size(); ++s) {
            if (same_capture_clocks(caps, blocks[s]->captures)) {
              home = blocks[s].get();
              break;
            }
          }
          if (!home) {
            auto nb2 = std::make_unique<Block>();
            nb2->rep = l;
            nb2->map = blk.map;
            nb2->captures = caps;
            blocks.push_back(std::move(nb2));
            home = blocks.back().get();
          }
          home->mask.set(l);
          blk.mask.clear(l);
        }
      }

      // 3. One resolution + one map write per block.
      for (auto& blkp : blocks) {
        Block& blk = *blkp;
        own.clear();
        for (const BTag& tag : slot) {
          if (tag.mask.test(blk.rep)) own.push_back(&tag);
        }
        if (own.empty()) continue;
        for (const ClockArrival& cap : blk.captures) {
          memo.clear();
          for (const BTag* tagp : own) {
            const BTag& tag = *tagp;
            // Startpoints are untracked here, so the relation key and the
            // inserted states are functions of (launch, progress) alone —
            // a repeat is a no-op.
            bool seen = false;
            for (const Resolved& r : memo) {
              if (r.progress == tag.progress && r.launch == tag.launch) {
                seen = true;
                break;
              }
            }
            if (seen) continue;
            memo.push_back({tag.progress, tag.launch});

            PathState state;
            PathState hold_state;
            const bool exclusive =
                tag.launch.valid() &&
                excl_rep[tag.launch.index() * num_clocks +
                         cap.clock.index()] != 0;
            if (exclusive) {
              state = PathState::false_path();
              hold_state = PathState::false_path();
            } else {
              exc.resolve_both(table.get(tag.progress), tag.launch, endpoint,
                               cap.clock, &state, &hold_state);
            }

            RelationKey key;
            key.endpoint = endpoint;
            key.startpoint = tag.startpoint;
            key.launch = tag.launch;
            key.capture = cap.clock;
            RelationData& data = blk.map[key];
            data.states.insert(state);
            if (options.analyze_hold) data.hold_states.insert(hold_state);
          }
        }
      }
    }
  };

  if (options.pool && groups.size() > 1) {
    options.pool->parallel_for(groups.size(), [&](size_t g) { sweep(g); });
  } else {
    for (size_t g = 0; g < groups.size(); ++g) sweep(g);
  }

  results_.clear();
  for (auto& g : groups) {
    for (auto& blkp : g) {
      const uint32_t idx = static_cast<uint32_t>(results_.size());
      for (size_t l = 0; l < L; ++l) {
        if (blkp->mask.test(l)) lane_result_[l] = idx;
      }
      results_.push_back(std::move(blkp->map));
    }
  }
}

void BatchPropagator::fill_soa_lanes(const BatchOptions& options) {
  const std::vector<PinId>& eps = graph_->endpoints();
  const size_t L = lanes_.size();
  slack_.assign(eps.size() * L, kNoSlack);
  hold_slack_.assign(options.analyze_hold ? eps.size() * L : 0, kNoSlack);
  arrival_.assign(eps.size() * L, kNoArrival);

  std::unordered_map<uint32_t, size_t> index;
  index.reserve(eps.size());
  for (size_t i = 0; i < eps.size(); ++i) index.emplace(eps[i].value(), i);

  for (size_t l = 0; l < L; ++l) {
    for (const auto& [key, data] : relations(l)) {
      const size_t i = index.at(key.endpoint.value());
      const size_t at = i * L + l;
      if (data.worst_slack < 1e29f) {
        slack_[at] = std::min(slack_[at], data.worst_slack);
      }
      if (options.analyze_hold && data.worst_hold_slack < 1e29f) {
        hold_slack_[at] = std::min(hold_slack_[at], data.worst_hold_slack);
      }
      if (data.worst_arrival > -1e29f) {
        arrival_[at] = std::max(arrival_[at], data.worst_arrival);
      }
    }
  }
}

std::unordered_map<uint32_t, float> BatchPropagator::worst_slack_by_endpoint(
    size_t lane) const {
  std::unordered_map<uint32_t, float> out;
  for (const auto& [key, data] : relations(lane)) {
    if (data.worst_slack >= 1e29f) continue;
    auto [it, inserted] = out.emplace(key.endpoint.value(), data.worst_slack);
    if (!inserted) it->second = std::min(it->second, data.worst_slack);
  }
  return out;
}

std::unordered_map<uint32_t, float>
BatchPropagator::worst_hold_slack_by_endpoint(size_t lane) const {
  std::unordered_map<uint32_t, float> out;
  for (const auto& [key, data] : relations(lane)) {
    if (data.worst_hold_slack >= 1e29f) continue;
    auto [it, inserted] =
        out.emplace(key.endpoint.value(), data.worst_hold_slack);
    if (!inserted) it->second = std::min(it->second, data.worst_hold_slack);
  }
  return out;
}

}  // namespace mm::timing
