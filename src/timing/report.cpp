#include "timing/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <set>
#include <sstream>

#include "timing/delay_calc.h"

namespace mm::timing {

namespace {

/// Backward path traceback: from an endpoint tag, greedily follow the
/// fan-in arc whose source carries a same-launch tag with matching arrival
/// (amax - arc delay). Exception-progress ambiguity can in rare
/// reconvergent cases pick a sibling path with identical delay — acceptable
/// for a report.
std::vector<std::pair<PinId, double>> trace_path(
    const TimingGraph& graph, const ModeGraph& mode, const Propagator& prop,
    const std::vector<double>& arc_delay, PinId endpoint,
    const Tag& end_tag, bool use_max) {
  std::vector<std::pair<PinId, double>> points;  // (pin, arrival) reversed
  PinId pin = endpoint;
  double arrival = use_max ? end_tag.amax : end_tag.amin;
  const sdc::ClockId launch = end_tag.launch;
  constexpr double kEps = 1e-4;

  points.emplace_back(pin, arrival);
  while (true) {
    bool stepped = false;
    for (ArcId aid : graph.fanin(pin)) {
      if (!mode.arc_enabled(aid)) continue;
      const Arc& arc = graph.arc(aid);
      const double delay = arc_delay[aid.index()];
      for (const Tag& tag : prop.tags()[arc.from.index()]) {
        if (tag.launch != launch) continue;
        const double src = use_max ? tag.amax : tag.amin;
        if (std::fabs(src + delay - arrival) < kEps) {
          pin = arc.from;
          arrival = src;
          points.emplace_back(pin, arrival);
          stepped = true;
          break;
        }
      }
      if (stepped) break;
    }
    if (!stepped) break;
  }
  std::reverse(points.begin(), points.end());
  return points;
}

std::string cell_of(const netlist::Design& d, PinId pin) {
  const netlist::Pin& p = d.pin(pin);
  if (p.is_port()) return "port";
  return d.cell_of_pin(pin).name();
}

}  // namespace

std::string report_timing(const TimingGraph& graph, const Sdc& sdc,
                          const ReportTimingOptions& options) {
  const netlist::Design& d = graph.design();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);

  ModeGraph mode(graph, sdc);
  const DelayCalcResult delays = compute_delays(graph, sdc);
  CompiledExceptions exceptions(graph, sdc);
  Propagator prop(mode, exceptions);
  PropagationOptions popts;
  popts.compute_arrivals = true;
  popts.analyze_hold = options.hold;
  popts.arc_delays = &delays.arc_delay;
  prop.run(popts);

  // Rank relation keys by slack on the requested side.
  struct Worst {
    RelationKey key;
    float slack;
    float arrival;
  };
  std::vector<Worst> ranked;
  for (const auto& [key, data] : prop.relations()) {
    const float slack = options.hold ? data.worst_hold_slack : data.worst_slack;
    if (slack >= 1e29f) continue;
    ranked.push_back({key, slack, data.worst_arrival});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Worst& a, const Worst& b) { return a.slack < b.slack; });

  os << (options.hold ? "Hold" : "Setup") << " timing report — "
     << ranked.size() << " timed relation(s), showing worst "
     << std::min(options.max_paths, ranked.size()) << "\n";

  size_t shown = 0;
  std::set<uint32_t> seen_endpoints;
  for (const Worst& w : ranked) {
    if (shown >= options.max_paths) break;
    if (!seen_endpoints.insert(w.key.endpoint.value()).second) continue;
    ++shown;

    os << "\nEndpoint: " << d.pin_name(w.key.endpoint) << " ("
       << cell_of(d, w.key.endpoint) << ")\n";
    if (w.key.launch.valid())
      os << "Launch clock: " << sdc.clock(w.key.launch).name << "\n";
    if (w.key.capture.valid())
      os << "Capture clock: " << sdc.clock(w.key.capture).name << "\n";

    // Find the worst *timed* tag at the endpoint for this key's launch
    // clock (false-pathed tags can carry larger arrivals but are excluded
    // from analysis and must not be traced).
    const Tag* worst_tag = nullptr;
    for (const Tag& tag : prop.tags()[w.key.endpoint.index()]) {
      if (tag.launch != w.key.launch) continue;
      const PathState state = exceptions.resolve(
          prop.progress_table().get(tag.progress), tag.launch, w.key.endpoint,
          w.key.capture, /*setup_side=*/!options.hold);
      if (!state.is_timed()) continue;
      if (!worst_tag) worst_tag = &tag;
      else if (options.hold ? (tag.amin < worst_tag->amin)
                            : (tag.amax > worst_tag->amax)) {
        worst_tag = &tag;
      }
    }
    if (worst_tag) {
      const auto points = trace_path(graph, mode, prop, delays.arc_delay,
                                     w.key.endpoint, *worst_tag,
                                     /*use_max=*/!options.hold);
      os << "  " << std::left << std::setw(28) << "point" << std::right
         << std::setw(9) << "incr" << std::setw(9) << "path\n";
      double prev = points.empty() ? 0.0 : points.front().second;
      for (size_t i = 0; i < points.size(); ++i) {
        const auto& [pin, arrival] = points[i];
        os << "  " << std::left << std::setw(28)
           << std::string(d.pin_name(pin)) << std::right << std::setw(9)
           << (i == 0 ? arrival : arrival - prev) << std::setw(9) << arrival
           << "\n";
        prev = arrival;
      }
    }
    const double arrival = options.hold
                               ? (worst_tag ? worst_tag->amin : 0.0)
                               : (worst_tag ? worst_tag->amax : 0.0);
    os << "  data " << (options.hold ? "(min) " : "") << "arrival: " << arrival
       << "\n";
    os << "  slack: " << w.slack << (w.slack < 0 ? "  (VIOLATED)" : "  (MET)")
       << "\n";
  }
  return os.str();
}

std::string report_clocks(const TimingGraph& graph, const Sdc& sdc) {
  const netlist::Design& d = graph.design();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  ModeGraph mode(graph, sdc);

  os << "Clocks (" << sdc.num_clocks() << ")\n";
  for (size_t i = 0; i < sdc.num_clocks(); ++i) {
    const sdc::ClockId id(i);
    const sdc::Clock& c = sdc.clock(id);
    os << "  " << c.name << ": period " << c.period;
    if (c.waveform.size() == 2)
      os << " waveform {" << c.waveform[0] << " " << c.waveform[1] << "}";
    if (c.is_generated)
      os << " generated(master=" << c.master_clock << " /" << c.divide_by
         << " x" << c.multiply_by << ")";
    if (c.propagated) os << " propagated";
    if (c.is_virtual()) {
      os << " virtual";
    } else {
      os << " sources {";
      for (size_t s = 0; s < c.sources.size(); ++s) {
        os << (s ? " " : "") << d.pin_name(c.sources[s]);
      }
      os << "}";
    }
    // Reach: how many register clock pins this clock arrives at.
    size_t reached = 0;
    for (PinId sp : graph.startpoints()) {
      if (!d.pin(sp).is_port() && mode.clock_on(sp, id)) ++reached;
    }
    os << " -> " << reached << " register clock pin(s)\n";
  }
  for (const sdc::ClockGroups& cg : sdc.clock_groups()) {
    os << "  group(" << (cg.kind == sdc::ClockGroupKind::kAsynchronous
                             ? "async"
                             : "exclusive")
       << "):";
    for (const auto& group : cg.groups) {
      os << " {";
      for (size_t i = 0; i < group.size(); ++i) {
        os << (i ? " " : "") << sdc.clock(group[i]).name;
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

std::string report_relations(const TimingGraph& graph, const Sdc& sdc,
                             size_t max_rows) {
  const netlist::Design& d = graph.design();
  std::ostringstream os;

  ModeGraph mode(graph, sdc);
  CompiledExceptions exceptions(graph, sdc);
  Propagator prop(mode, exceptions);
  PropagationOptions popts;
  popts.compute_arrivals = false;
  popts.analyze_hold = true;
  prop.run(popts);

  // Deterministic order: sort keys by endpoint/launch/capture.
  std::vector<const std::pair<const RelationKey, RelationData>*> rows;
  for (const auto& entry : prop.relations()) rows.push_back(&entry);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->first.endpoint != b->first.endpoint)
      return a->first.endpoint < b->first.endpoint;
    if (a->first.launch != b->first.launch)
      return a->first.launch < b->first.launch;
    return a->first.capture < b->first.capture;
  });

  os << "Timing relationships (" << rows.size() << " keys)\n";
  os << "  " << std::left << std::setw(24) << "endpoint" << std::setw(10)
     << "launch" << std::setw(10) << "capture" << std::setw(16) << "setup"
     << "hold\n";
  size_t shown = 0;
  for (const auto* entry : rows) {
    if (shown++ >= max_rows) {
      os << "  ... (" << rows.size() - max_rows << " more)\n";
      break;
    }
    const RelationKey& key = entry->first;
    os << "  " << std::left << std::setw(24)
       << std::string(d.pin_name(key.endpoint)) << std::setw(10)
       << (key.launch.valid() ? sdc.clock(key.launch).name : "-")
       << std::setw(10)
       << (key.capture.valid() ? sdc.clock(key.capture).name : "-")
       << std::setw(16) << entry->second.states.str()
       << entry->second.hold_states.str() << "\n";
  }
  return os.str();
}

}  // namespace mm::timing
