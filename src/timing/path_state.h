#pragma once
// PathState: the paper's "constraint state" of a bundle of paths — valid,
// false-path, multicycle, min/max delay, or disabled. Timing relationships
// (§2 of the paper) are keyed by (startpoint, endpoint, launch, capture) and
// carry a set of PathStates.

#include <cstdint>
#include <functional>
#include <string>

namespace mm::timing {

enum class StateKind : uint8_t {
  kValid = 0,
  kMcp,        // multicycle path, value = multiplier
  kMaxDelay,   // value = max delay bound
  kMinDelay,   // value = min delay bound
  kFalsePath,
  kDisabled,   // structurally not timed (no path / disabled arcs)
};

struct PathState {
  StateKind kind = StateKind::kValid;
  float value = 0.0f;

  friend bool operator==(const PathState&, const PathState&) = default;
  friend bool operator<(const PathState& a, const PathState& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.value < b.value;
  }

  bool is_timed() const {
    return kind != StateKind::kFalsePath && kind != StateKind::kDisabled;
  }

  static PathState valid() { return {StateKind::kValid, 0.0f}; }
  static PathState false_path() { return {StateKind::kFalsePath, 0.0f}; }
  static PathState mcp(double mult) {
    return {StateKind::kMcp, static_cast<float>(mult)};
  }
  static PathState max_delay(double v) {
    return {StateKind::kMaxDelay, static_cast<float>(v)};
  }
  static PathState min_delay(double v) {
    return {StateKind::kMinDelay, static_cast<float>(v)};
  }

  std::string str() const;
};

/// Exception-application precedence, high to low (the paper: "false-path
/// overrides the multicycle-path"; SDC: set_false_path > set_max_delay /
/// set_min_delay > set_multicycle_path > default).
inline int precedence_rank(StateKind kind) {
  switch (kind) {
    case StateKind::kFalsePath: return 4;
    case StateKind::kMaxDelay:
    case StateKind::kMinDelay: return 3;
    case StateKind::kMcp: return 2;
    case StateKind::kDisabled: return 5;  // structural, above everything
    case StateKind::kValid: return 0;
  }
  return 0;
}

}  // namespace mm::timing

template <>
struct std::hash<mm::timing::PathState> {
  size_t operator()(const mm::timing::PathState& s) const noexcept {
    return (static_cast<size_t>(s.kind) << 32) ^
           std::hash<float>{}(s.value);
  }
};
