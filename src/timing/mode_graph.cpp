#include "timing/mode_graph.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/logger.h"

namespace mm::timing {

using netlist::Design;
using netlist::LibCell;

ModeGraph::ModeGraph(const TimingGraph& graph, const Sdc& sdc)
    : graph_(&graph), sdc_(&sdc) {
  constants_.assign(graph.num_nodes(), Logic::kUnknown);
  arc_enabled_.assign(graph.num_arcs(), 1);
  clocks_on_.resize(graph.num_nodes());

  {
    MM_SPAN_HOT("timing/case_analysis");
    propagate_constants();
    apply_disables();
    kill_blocked_arcs();
  }
  {
    MM_SPAN_HOT("timing/clock_propagation");
    propagate_clocks();
    find_active_points();
  }
}

void ModeGraph::propagate_constants() {
  const Design& d = graph_->design();

  // Case-analysis pins are pinned to their forced value and override
  // propagation through them.
  std::vector<uint8_t> pinned(d.num_pins(), 0);
  for (const sdc::CaseAnalysis& ca : sdc_->case_analysis()) {
    constants_[ca.pin.index()] = ca.value;
    pinned[ca.pin.index()] = 1;
  }

  std::vector<Logic> inst_values;  // scratch, per-instance pin values
  for (PinId pin : graph_->topo_order()) {
    if (pinned[pin.index()]) continue;
    const netlist::Pin& p = d.pin(pin);

    // Load pins copy their net driver's constant.
    if (!graph_->fanin(pin).empty()) {
      bool from_net = false;
      for (ArcId aid : graph_->fanin(pin)) {
        const Arc& arc = graph_->arc(aid);
        if (arc.kind == ArcKind::kNet && !arc.loop_break) {
          constants_[pin.index()] = constants_[arc.from.index()];
          from_net = true;
          break;
        }
      }
      if (from_net) continue;
    }

    // Instance output pins evaluate the cell function.
    if (!p.is_port() && d.lib_pin_of(pin).dir == netlist::PinDir::kOutput) {
      const netlist::Instance& inst = d.instance(p.inst);
      const LibCell& cell = d.library().cell(inst.cell);
      inst_values.assign(cell.pins().size(), Logic::kUnknown);
      for (uint32_t i = 0; i < cell.pins().size(); ++i) {
        inst_values[i] = constants_[inst.pins[i].index()];
      }
      constants_[pin.index()] = cell.evaluate(inst_values);
    }
  }
}

void ModeGraph::apply_disables() {
  const Design& d = graph_->design();
  for (ArcId aid(0u); aid.index() < graph_->num_arcs(); aid = ArcId(aid.value() + 1)) {
    if (graph_->arc(aid).loop_break) arc_enabled_[aid.index()] = 0;
  }
  for (const sdc::DisableTiming& dt : sdc_->disables()) {
    if (dt.pin.valid()) {
      for (ArcId a : graph_->fanout(dt.pin)) arc_enabled_[a.index()] = 0;
      for (ArcId a : graph_->fanin(dt.pin)) arc_enabled_[a.index()] = 0;
      continue;
    }
    // Instance form: kill the instance's internal (cell) arcs, optionally
    // restricted to -from/-to library pins.
    const netlist::Instance& inst = d.instance(dt.inst);
    for (uint32_t lp = 0; lp < inst.pins.size(); ++lp) {
      const PinId pin = inst.pins[lp];
      for (ArcId aid : graph_->fanout(pin)) {
        const Arc& arc = graph_->arc(aid);
        if (arc.kind == ArcKind::kNet) continue;  // cell arcs only
        const netlist::Pin& to = d.pin(arc.to);
        if (to.is_port() || to.inst != dt.inst) continue;
        if (dt.from_lib_pin != UINT32_MAX && lp != dt.from_lib_pin) continue;
        if (dt.to_lib_pin != UINT32_MAX && to.lib_pin != dt.to_lib_pin) continue;
        arc_enabled_[aid.index()] = 0;
      }
    }
  }
}

void ModeGraph::kill_blocked_arcs() {
  const Design& d = graph_->design();
  std::vector<Logic> inst_values;
  for (size_t ai = 0; ai < graph_->num_arcs(); ++ai) {
    if (!arc_enabled_[ai]) continue;
    const Arc& arc = graph_->arc(ArcId(ai));
    // No transitions out of, or into, a constant pin.
    if (is_constant(arc.from) || is_constant(arc.to)) {
      arc_enabled_[ai] = 0;
      continue;
    }
    if (arc.kind != ArcKind::kComb) continue;

    // Side-input sensitivity: can this input still toggle the output given
    // the constants on the cell's other inputs?
    const netlist::Pin& fp = d.pin(arc.from);
    const netlist::Instance& inst = d.instance(fp.inst);
    const LibCell& cell = d.library().cell(inst.cell);
    inst_values.assign(cell.pins().size(), Logic::kUnknown);
    for (uint32_t i = 0; i < cell.pins().size(); ++i) {
      inst_values[i] = constants_[inst.pins[i].index()];
    }
    if (!cell.input_affects_output(fp.lib_pin, inst_values)) {
      arc_enabled_[ai] = 0;
    }
  }
}

bool ModeGraph::clock_on(PinId pin, ClockId clock) const {
  for (const ClockArrival& ca : clocks_on_[pin.index()]) {
    if (ca.clock == clock) return true;
  }
  return false;
}

void ModeGraph::propagate_clocks() {
  // Stop table: pin -> clocks stopped there (invalid clock id = all).
  auto stopped = [&](PinId pin, ClockId clock) {
    for (const sdc::ClockSenseStop& s : sdc_->clock_sense_stops()) {
      if (s.pin == pin && (!s.clock.valid() || s.clock == clock)) return true;
    }
    return false;
  };

  auto insert_arrival = [&](PinId pin, ClockId clock, double latency) {
    // set_clock_sense -stop_propagation semantics used by the merge
    // refinement: the clock does not appear on the stop pin or beyond
    // (this makes a refined merged mode match the individual modes
    // exactly at every clock-network pin).
    if (stopped(pin, clock)) return;
    auto& vec = clocks_on_[pin.index()];
    for (ClockArrival& ca : vec) {
      if (ca.clock == clock) {
        ca.latency = std::max(ca.latency, latency);
        return;
      }
    }
    vec.push_back({clock, latency});
  };

  auto run_topo_pass = [&]() {
    for (PinId pin : graph_->topo_order()) {
      for (const ClockArrival& ca : clocks_on_[pin.index()]) {
        if (is_constant(pin)) continue;
        for (ArcId aid : graph_->fanout(pin)) {
          if (!arc_enabled_[aid.index()]) continue;
          const Arc& arc = graph_->arc(aid);
          if (arc.kind == ArcKind::kLaunch) continue;  // clock ends at CP
          const double delay =
              arc.kind == ArcKind::kNet
                  ? arc.intrinsic
                  : arc.intrinsic + arc.resistance * graph_->load_on(arc.to);
          insert_arrival(arc.to, ca.clock, ca.latency + delay);
        }
      }
    }
  };

  // Seed root clocks.
  for (size_t ci = 0; ci < sdc_->num_clocks(); ++ci) {
    const sdc::Clock& clock = sdc_->clock(ClockId(ci));
    if (clock.is_generated) continue;
    for (PinId src : clock.sources) insert_arrival(src, ClockId(ci), 0.0);
  }
  run_topo_pass();

  // Seed generated clocks from their master's latency at the -source pin.
  // Chained generated clocks (gen-of-gen) need one extra seeding round per
  // chain level, so iterate to a fixpoint (bounded by the clock count).
  size_t num_generated = 0;
  for (size_t ci = 0; ci < sdc_->num_clocks(); ++ci) {
    if (sdc_->clock(ClockId(ci)).is_generated) ++num_generated;
  }
  for (size_t round = 0; round < num_generated; ++round) {
    for (size_t ci = 0; ci < sdc_->num_clocks(); ++ci) {
      const sdc::Clock& clock = sdc_->clock(ClockId(ci));
      if (!clock.is_generated) continue;
      double base = 0.0;
      const ClockId master = sdc_->find_clock(clock.master_clock);
      if (master.valid() && clock.master_source.valid()) {
        for (const ClockArrival& ca :
             clocks_on_[clock.master_source.index()]) {
          if (ca.clock == master) base = ca.latency;
        }
      }
      for (PinId src : clock.sources) insert_arrival(src, ClockId(ci), base);
    }
    run_topo_pass();
  }

  for (auto& vec : clocks_on_) {
    std::sort(vec.begin(), vec.end(),
              [](const ClockArrival& a, const ClockArrival& b) {
                return a.clock < b.clock;
              });
  }
}

void ModeGraph::find_active_points() {
  const Design& d = graph_->design();

  for (PinId sp : graph_->startpoints()) {
    if (d.pin(sp).is_port()) {
      for (const sdc::PortDelay& pd : sdc_->port_delays()) {
        if (pd.is_input && pd.port_pin == sp) {
          active_startpoints_.push_back(sp);
          break;
        }
      }
    } else if (in_clock_network(sp)) {
      active_startpoints_.push_back(sp);
    }
  }

  for (PinId ep : graph_->endpoints()) {
    if (d.pin(ep).is_port()) {
      for (const sdc::PortDelay& pd : sdc_->port_delays()) {
        if (!pd.is_input && pd.port_pin == ep) {
          active_endpoints_.push_back(ep);
          break;
        }
      }
    } else if (!capture_clocks_at(ep).empty()) {
      active_endpoints_.push_back(ep);
    }
  }
}

std::vector<ClockArrival> ModeGraph::capture_clocks_at(PinId endpoint) const {
  std::vector<ClockArrival> out;
  capture_clocks_at(endpoint, out);
  return out;
}

void ModeGraph::capture_clocks_at(PinId endpoint,
                                  std::vector<ClockArrival>& out) const {
  out.clear();
  const Design& d = graph_->design();
  if (d.pin(endpoint).is_port()) {
    // Output port: capture clocks come from set_output_delay -clock.
    for (const sdc::PortDelay& pd : sdc_->port_delays()) {
      if (pd.is_input || pd.port_pin != endpoint || !pd.clock.valid()) continue;
      bool seen = false;
      for (const ClockArrival& ca : out) seen |= (ca.clock == pd.clock);
      if (!seen) out.push_back({pd.clock, 0.0});
    }
    return;
  }
  for (uint32_t ci : graph_->checks_at(endpoint)) {
    const Check& check = graph_->checks()[ci];
    for (const ClockArrival& ca : clocks_on_[check.clock.index()]) {
      bool seen = false;
      for (const ClockArrival& o : out) seen |= (o.clock == ca.clock);
      if (!seen) out.push_back(ca);
    }
  }
}

double ModeGraph::source_latency(ClockId clock) const {
  double v = 0.0;
  for (const sdc::ClockLatency& lat : sdc_->clock_latencies()) {
    if (lat.clock == clock && lat.source && lat.minmax.max) v = std::max(v, lat.value);
  }
  return v;
}

double ModeGraph::ideal_network_latency(ClockId clock) const {
  double v = 0.0;
  for (const sdc::ClockLatency& lat : sdc_->clock_latencies()) {
    if (lat.clock == clock && !lat.source && lat.minmax.max) v = std::max(v, lat.value);
  }
  return v;
}

double ModeGraph::uncertainty(ClockId clock) const {
  double v = 0.0;
  for (const sdc::ClockUncertainty& unc : sdc_->clock_uncertainties()) {
    if (unc.clock == clock && unc.setup_hold.setup) v = std::max(v, unc.value);
  }
  return v;
}

double ModeGraph::hold_uncertainty(ClockId clock) const {
  double v = 0.0;
  for (const sdc::ClockUncertainty& unc : sdc_->clock_uncertainties()) {
    if (unc.clock == clock && unc.setup_hold.hold) v = std::max(v, unc.value);
  }
  return v;
}

}  // namespace mm::timing
