#pragma once
// Mode-independent timing graph over a Design.
//
// Nodes are pins (node index == pin index). Arcs are:
//   - net arcs: driver pin -> each load pin of a net,
//   - cell arcs: input pin -> output pin per library timing arc
//     (combinational and CP->Q launch arcs).
// Setup/hold checks (D vs CP) are kept in a separate list — they constrain
// endpoints rather than carry signal flow.
//
// The graph is levelized once (topological order with combinational-loop
// breaking); per-mode state (constants, disabled arcs, clock propagation)
// lives in ModeGraph.

#include <vector>

#include "netlist/design.h"
#include "util/id.h"

namespace mm::timing {

using netlist::Design;
using netlist::InstId;
using netlist::PinId;

using ArcId = Id<struct TArcTag>;

enum class ArcKind : uint8_t {
  kNet,     // net driver -> load
  kComb,    // combinational cell arc
  kLaunch,  // register CP -> Q
};

struct Arc {
  PinId from;
  PinId to;
  ArcKind kind = ArcKind::kNet;
  double intrinsic = 0.0;   // cell arcs: intrinsic delay; net arcs: base delay
  double resistance = 0.0;  // cell arcs: delay slope vs driven load
  bool loop_break = false;  // marked during levelization; never propagated
};

/// A setup/hold check: data pin constrained against a clock pin.
struct Check {
  PinId data;   // D / SI / SE pin
  PinId clock;  // CP pin of the same instance
  double setup = 0.0;
  double hold = 0.0;
};

class TimingGraph {
 public:
  /// Build from a design. `net_delay_per_fanout` is the wire-load-style net
  /// delay added per fanout pin (paper's STA uses wire load models).
  explicit TimingGraph(const Design& design, double net_delay_per_fanout = 0.02);

  const Design& design() const { return *design_; }

  size_t num_nodes() const { return design_->num_pins(); }
  size_t num_arcs() const { return arcs_.size(); }

  const Arc& arc(ArcId id) const { return arcs_[id.index()]; }
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Arc ids leaving / entering a pin.
  const std::vector<ArcId>& fanout(PinId pin) const { return fanout_[pin.index()]; }
  const std::vector<ArcId>& fanin(PinId pin) const { return fanin_[pin.index()]; }

  const std::vector<Check>& checks() const { return checks_; }
  /// Checks whose data pin is `pin` (indices into checks()).
  const std::vector<uint32_t>& checks_at(PinId pin) const {
    return checks_at_[pin.index()];
  }

  /// Pins in topological order (sources first). Loop-break arcs are excluded
  /// from the order's edge set.
  const std::vector<PinId>& topo_order() const { return topo_order_; }
  /// Topological level of a pin (position in topo_order).
  uint32_t topo_position(PinId pin) const { return topo_pos_[pin.index()]; }

  /// Topological level buckets: levels()[k] holds every pin whose longest
  /// fan-in chain over non-loop-break arcs has k arcs (level 0 = pins with
  /// no such fan-in). All fan-ins of a level-k pin sit at levels < k, so a
  /// level is the unit of the batched STA's level-parallel walk: the pins
  /// of one level can be processed concurrently, each pulling only from
  /// already-settled lower levels. Within a bucket, pins are in topo_order
  /// (deterministic).
  const std::vector<std::vector<PinId>>& levels() const { return levels_; }
  size_t num_levels() const { return levels_.size(); }
  uint32_t level_of(PinId pin) const { return level_of_[pin.index()]; }

  /// Pin drives >= 1 register launch (CP->Q) arc: its tags leave only
  /// through launch arcs — the clock becomes data at Q (mode-independent,
  /// precomputed so the propagation hot loops need no fanout re-scan).
  bool has_launch_fanout(PinId pin) const { return has_launch_[pin.index()]; }

  /// Structural endpoint pins: data pins of checks + output ports.
  const std::vector<PinId>& endpoints() const { return endpoints_; }
  /// Structural startpoint pins: register CP pins + input ports.
  const std::vector<PinId>& startpoints() const { return startpoints_; }

  bool is_endpoint(PinId pin) const { return is_endpoint_[pin.index()]; }
  bool is_startpoint(PinId pin) const { return is_startpoint_[pin.index()]; }

  /// Total input capacitance hanging on the net driven by `pin`
  /// (0 if the pin drives nothing). Used by the delay model.
  double load_on(PinId pin) const { return load_[pin.index()]; }

  /// Number of arcs marked as loop breaks.
  size_t num_loop_breaks() const { return num_loop_breaks_; }

 private:
  void build_arcs(double net_delay_per_fanout);
  void classify_pins();
  void levelize();

  const Design* design_;
  std::vector<Arc> arcs_;
  std::vector<std::vector<ArcId>> fanout_;
  std::vector<std::vector<ArcId>> fanin_;
  std::vector<Check> checks_;
  std::vector<std::vector<uint32_t>> checks_at_;
  std::vector<PinId> topo_order_;
  std::vector<uint32_t> topo_pos_;
  std::vector<std::vector<PinId>> levels_;
  std::vector<uint32_t> level_of_;
  std::vector<uint8_t> has_launch_;
  std::vector<PinId> endpoints_;
  std::vector<PinId> startpoints_;
  std::vector<uint8_t> is_endpoint_;
  std::vector<uint8_t> is_startpoint_;
  std::vector<double> load_;
  size_t num_loop_breaks_ = 0;
};

}  // namespace mm::timing
