#include "timing/graph.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/logger.h"

namespace mm::timing {

namespace {
using LibArcKind = netlist::ArcKind;
}  // namespace

TimingGraph::TimingGraph(const Design& design, double net_delay_per_fanout)
    : design_(&design) {
  const size_t n = design.num_pins();
  fanout_.resize(n);
  fanin_.resize(n);
  checks_at_.resize(n);
  is_endpoint_.assign(n, 0);
  is_startpoint_.assign(n, 0);
  load_.assign(n, 0.0);
  {
    MM_SPAN("timing/graph_build");
    build_arcs(net_delay_per_fanout);
    classify_pins();
  }
  {
    MM_SPAN("timing/levelize");
    levelize();
  }
  MM_GAUGE_SET("timing/graph/nodes", num_nodes());
  MM_GAUGE_SET("timing/graph/arcs", num_arcs());
}

void TimingGraph::build_arcs(double net_delay_per_fanout) {
  const Design& d = *design_;

  // Net arcs: driver -> loads; accumulate load caps on the driver.
  for (size_t ni = 0; ni < d.num_nets(); ++ni) {
    const netlist::Net& net = d.net(netlist::NetId(ni));
    if (!net.driver.valid()) continue;
    double cap = 0.0;
    for (PinId load : net.loads) {
      const netlist::Pin& lp = d.pin(load);
      if (!lp.is_port()) cap += d.lib_pin_of(load).cap;
      const ArcId id(arcs_.size());
      Arc arc;
      arc.from = net.driver;
      arc.to = load;
      arc.kind = ArcKind::kNet;
      arc.intrinsic = net_delay_per_fanout;
      arcs_.push_back(arc);
      fanout_[net.driver.index()].push_back(id);
      fanin_[load.index()].push_back(id);
    }
    load_[net.driver.index()] = cap;
  }

  // Cell arcs + checks.
  for (size_t ii = 0; ii < d.num_instances(); ++ii) {
    const InstId inst(ii);
    const netlist::Instance& in = d.instance(inst);
    const netlist::LibCell& cell = d.library().cell(in.cell);
    for (const netlist::LibArc& la : cell.arcs()) {
      const PinId from = in.pins[la.from_pin];
      const PinId to = in.pins[la.to_pin];
      if (la.kind == LibArcKind::kSetupHold) {
        // la.from_pin = data, la.to_pin = clock; intrinsic = setup time.
        Check check;
        check.data = from;
        check.clock = to;
        check.setup = la.intrinsic;
        check.hold = la.intrinsic * 0.25;  // library convention: hold < setup
        checks_at_[from.index()].push_back(static_cast<uint32_t>(checks_.size()));
        checks_.push_back(check);
        continue;
      }
      const ArcId id(arcs_.size());
      Arc arc;
      arc.from = from;
      arc.to = to;
      arc.kind = la.kind == LibArcKind::kLaunch ? ArcKind::kLaunch : ArcKind::kComb;
      arc.intrinsic = la.intrinsic;
      arc.resistance = la.resistance;
      arcs_.push_back(arc);
      fanout_[from.index()].push_back(id);
      fanin_[to.index()].push_back(id);
    }
  }
}

void TimingGraph::classify_pins() {
  const Design& d = *design_;

  for (const Check& check : checks_) {
    if (!is_endpoint_[check.data.index()]) {
      is_endpoint_[check.data.index()] = 1;
      endpoints_.push_back(check.data);
    }
    // A check's clock pin is a path startpoint only if it launches data
    // (has a CP->Q arc). An ICG's CK pin is a capture reference for the
    // enable check but launches nothing.
    bool launches = false;
    for (ArcId aid : fanout_[check.clock.index()]) {
      if (arcs_[aid.index()].kind == ArcKind::kLaunch) launches = true;
    }
    if (launches && !is_startpoint_[check.clock.index()]) {
      is_startpoint_[check.clock.index()] = 1;
      startpoints_.push_back(check.clock);
    }
  }
  for (size_t pi = 0; pi < d.num_ports(); ++pi) {
    const netlist::Port& port = d.port(netlist::PortId(pi));
    if (port.dir == netlist::PinDir::kInput) {
      if (!is_startpoint_[port.pin.index()]) {
        is_startpoint_[port.pin.index()] = 1;
        startpoints_.push_back(port.pin);
      }
    } else {
      if (!is_endpoint_[port.pin.index()]) {
        is_endpoint_[port.pin.index()] = 1;
        endpoints_.push_back(port.pin);
      }
    }
  }
}

void TimingGraph::levelize() {
  // Iterative DFS marking back arcs (combinational loops), then Kahn
  // topological sort over the remaining arc set.
  const size_t n = num_nodes();
  enum : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(n, kWhite);

  struct Frame {
    uint32_t pin;
    uint32_t next_arc;
  };
  std::vector<Frame> stack;

  for (uint32_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    stack.push_back({root, 0});
    color[root] = kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& outs = fanout_[frame.pin];
      if (frame.next_arc < outs.size()) {
        const ArcId aid = outs[frame.next_arc++];
        Arc& arc = arcs_[aid.index()];
        const uint32_t to = arc.to.value();
        if (color[to] == kGray) {
          arc.loop_break = true;  // back edge: combinational loop
          ++num_loop_breaks_;
        } else if (color[to] == kWhite) {
          color[to] = kGray;
          stack.push_back({to, 0});
        }
      } else {
        color[frame.pin] = kBlack;
        stack.pop_back();
      }
    }
  }
  if (num_loop_breaks_ > 0) {
    MM_WARN("broke %zu combinational loop arc(s)", num_loop_breaks_);
  }

  std::vector<uint32_t> indegree(n, 0);
  for (const Arc& arc : arcs_) {
    if (!arc.loop_break) ++indegree[arc.to.value()];
  }
  topo_order_.reserve(n);
  std::vector<uint32_t> queue;
  queue.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) queue.push_back(i);
  }
  level_of_.assign(n, 0);
  for (size_t head = 0; head < queue.size(); ++head) {
    const uint32_t pin = queue[head];
    topo_order_.push_back(PinId(pin));
    for (ArcId aid : fanout_[pin]) {
      const Arc& arc = arcs_[aid.index()];
      if (arc.loop_break) continue;
      const uint32_t to = arc.to.value();
      level_of_[to] = std::max(level_of_[to], level_of_[pin] + 1);
      if (--indegree[to] == 0) queue.push_back(to);
    }
  }
  MM_ASSERT_MSG(topo_order_.size() == n, "levelization dropped pins");
  topo_pos_.resize(n);
  for (uint32_t i = 0; i < n; ++i) topo_pos_[topo_order_[i].index()] = i;

  // Bucket pins by level, in topo order within a bucket, so a level-major
  // walk visits pins in a deterministic order.
  uint32_t max_level = 0;
  for (uint32_t i = 0; i < n; ++i) max_level = std::max(max_level, level_of_[i]);
  levels_.assign(n == 0 ? 0 : max_level + 1, {});
  for (PinId pin : topo_order_) levels_[level_of_[pin.index()]].push_back(pin);

  has_launch_.assign(n, 0);
  for (const Arc& arc : arcs_) {
    if (arc.kind == ArcKind::kLaunch) has_launch_[arc.from.index()] = 1;
  }
  MM_GAUGE_SET("timing/graph/levels", levels_.size());
}

}  // namespace mm::timing
