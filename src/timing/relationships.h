#pragma once
// Timing-relationship propagation — the engine behind both STA and the
// paper's 3-pass merged-mode refinement.
//
// A *tag* is (launch clock, exception progress, [startpoint]) plus an
// arrival window. Tags are seeded at active startpoints, flow forward
// through enabled arcs in topological order, advance exception progress at
// -through pins, and resolve to a PathState per (endpoint, capture clock).
//
// The result is the paper's timing-relationship table: for every key
// (endpoint [, startpoint], launch clock, capture clock) the set of
// PathStates over all covered paths, plus worst setup slack when arrivals
// are enabled.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "timing/exceptions.h"
#include "timing/mode_graph.h"
#include "timing/path_state.h"

namespace mm::timing {

/// Interns exception-progress vectors; id 0 is always the all-inactive or
/// empty vector.
class ProgressTable {
 public:
  explicit ProgressTable(uint32_t width);

  uint32_t intern(const std::vector<uint8_t>& v);
  const std::vector<uint8_t>& get(uint32_t id) const { return table_[id]; }
  size_t size() const { return table_.size(); }

 private:
  struct VecHash {
    size_t operator()(const std::vector<uint8_t>& v) const noexcept;
  };
  std::deque<std::vector<uint8_t>> table_;
  std::unordered_map<std::vector<uint8_t>, uint32_t, VecHash> ids_;
};

struct Tag {
  ClockId launch;           // invalid = unclocked (plain input delay)
  uint32_t progress = 0;    // ProgressTable id
  PinId startpoint;         // tracked only when options.track_startpoints
  float amin = 0.0f;        // earliest arrival at this pin
  float amax = 0.0f;        // latest arrival at this pin
};

struct RelationKey {
  PinId endpoint;
  PinId startpoint;  // invalid in endpoint-level (pass 1) analyses
  ClockId launch;
  ClockId capture;

  friend bool operator==(const RelationKey&, const RelationKey&) = default;
};

struct RelationKeyHash {
  /// splitmix64 finalizer: full-width 64-bit avalanche, so ids that differ
  /// in any field scatter across all size_t bits. (The previous 1000003u
  /// multiply-xor mixed only the low bits and collided whole id ranges
  /// into shared buckets on dense pin/clock ids.)
  static constexpr uint64_t mix(uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  size_t operator()(const RelationKey& k) const noexcept {
    const uint64_t pins = (static_cast<uint64_t>(k.endpoint.value()) << 32) |
                          k.startpoint.value();
    const uint64_t clocks = (static_cast<uint64_t>(k.launch.value()) << 32) |
                            k.capture.value();
    return static_cast<size_t>(mix(mix(pins) ^ clocks));
  }
};

/// Sorted, deduplicated set of PathStates (the "Individual mode state" /
/// "Merged mode state" columns of the paper's Tables 2-4).
struct StateSet {
  std::vector<PathState> states;

  void insert(const PathState& s);
  bool contains(const PathState& s) const;
  bool contains_kind(StateKind k) const;
  /// Only false-path / disabled states (nothing timed).
  bool all_untimed() const;
  /// Any timed state (valid / MCP / min / max).
  bool any_timed() const;
  bool singleton() const { return states.size() == 1; }
  void merge(const StateSet& o);
  std::string str() const;

  friend bool operator==(const StateSet&, const StateSet&) = default;
};

struct RelationData {
  StateSet states;              // setup-side states
  StateSet hold_states;         // hold-side states (when analyze_hold)
  float worst_slack = 1e30f;    // setup slack over timed paths (if arrivals on)
  float worst_hold_slack = 1e30f;
  float worst_arrival = -1e30f;
  ClockId worst_capture;  // capture clock of the worst setup slack
};

using RelationMap = std::unordered_map<RelationKey, RelationData, RelationKeyHash>;

struct PropagationOptions {
  bool track_startpoints = false;
  bool compute_arrivals = true;
  /// Restrict propagation to pins with filter[pin] != 0 (e.g. a fan-in cone).
  const std::vector<uint8_t>* pin_filter = nullptr;
  /// Restrict seeding to these startpoints (nullptr = all active).
  const std::vector<PinId>* startpoints = nullptr;
  /// Cap on tags per pin; 0 = unlimited. When hit, extra tags are dropped
  /// pessimistically-unsafe, so the engine records an overflow flag instead
  /// of silently mistiming — callers must check tag_overflow().
  size_t max_tags_per_pin = 0;
  /// Per-arc delays from a delay-calculation run (timing/delay_calc.h).
  /// nullptr falls back to the zero-slew closed-form model.
  const std::vector<double>* arc_delays = nullptr;
  /// Early (min) per-arc delays for the hold side's amin accumulation;
  /// nullptr uses `arc_delays` (no early/late split).
  const std::vector<double>* arc_delays_min = nullptr;
  /// Also resolve hold-side states (and hold slacks when arrivals are on).
  bool analyze_hold = false;
};

class Propagator {
 public:
  Propagator(const ModeGraph& mode, const CompiledExceptions& exceptions);

  void run(const PropagationOptions& options = {});

  const RelationMap& relations() const { return relations_; }
  /// Tags on every pin after run() (indexed by pin).
  const std::vector<std::vector<Tag>>& tags() const { return tags_; }
  const ProgressTable& progress_table() const { return progress_; }
  bool tag_overflow() const { return tag_overflow_; }

  /// Worst setup slack per endpoint over all keys (endpoint -> slack);
  /// endpoints with no timed relation are absent.
  std::unordered_map<uint32_t, float> worst_slack_by_endpoint() const;
  /// Worst hold slack per endpoint (requires analyze_hold).
  std::unordered_map<uint32_t, float> worst_hold_slack_by_endpoint() const;

  /// Compute the fan-in cone (as a pin mask) of the given endpoints over
  /// enabled arcs — used to restrict pass-2 propagation.
  static std::vector<uint8_t> fanin_cone(const ModeGraph& mode,
                                         const std::vector<PinId>& from_pins);

 private:
  void seed(const PropagationOptions& options);
  void seed_startpoint(PinId sp, const PropagationOptions& options);
  void insert_tag(PinId pin, ClockId launch, uint32_t progress_pre,
                  PinId startpoint, float amin, float amax, bool advance,
                  size_t max_tags);
  void resolve_endpoint(PinId endpoint, const PropagationOptions& options);
  double setup_relation(ClockId launch, ClockId capture, double mcp_mult) const;
  double hold_relation(ClockId launch, ClockId capture, double mcp_shift) const;

  const ModeGraph* mode_;
  const CompiledExceptions* exceptions_;
  ProgressTable progress_;
  std::vector<std::vector<Tag>> tags_;
  RelationMap relations_;
  bool tag_overflow_ = false;
};

}  // namespace mm::timing
