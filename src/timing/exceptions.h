#pragma once
// Exception compilation: turn an Sdc's set_false_path / set_multicycle_path
// / set_min_delay / set_max_delay list into match machinery for tag
// propagation.
//
// Matching model (documented in DESIGN.md): an exception
//   -from F -through T1 .. -through Tk -to T
// matches a path iff the path's startpoint/launch-clock satisfies F, the
// path passes a pin of T1, then later a pin of T2, ..., and its
// endpoint/capture-clock satisfies T. A -from / -to anchor set is a union of
// pins and clocks.
//
// Exceptions that depend on the specific startpoint or on intermediate pins
// ("tracked": from-pins or throughs present) carry a progress counter in
// each propagated tag; exceptions resolvable from (launch clock, endpoint,
// capture clock) alone are evaluated directly at the endpoint.

#include <unordered_set>
#include <vector>

#include "sdc/sdc.h"
#include "timing/graph.h"
#include "timing/path_state.h"

namespace mm::timing {

using sdc::ClockId;
using sdc::ExceptionKind;
using sdc::Sdc;

/// Progress value for "this exception can no longer match the path".
inline constexpr uint8_t kExcInactive = 0xFF;

struct CompiledException {
  ExceptionKind kind = ExceptionKind::kFalsePath;
  double value = 0.0;
  bool setup = true;
  bool hold = true;
  uint32_t source_index = 0;  // position in Sdc::exceptions()
  int spec_score = 0;         // -from:4 + -to:2 + -through:1 (tie-breaking)

  bool has_from = false;
  std::unordered_set<uint32_t> from_pins;  // canonical startpoint pins
  std::vector<ClockId> from_clocks;

  std::vector<std::unordered_set<uint32_t>> throughs;

  bool has_to = false;
  std::unordered_set<uint32_t> to_pins;  // canonical endpoint pins
  std::vector<ClockId> to_clocks;

  /// Tracked == needs per-tag progress (startpoint pins or through sets).
  bool tracked = false;
  uint32_t track_slot = UINT32_MAX;  // index into tag progress vectors

  uint8_t num_throughs() const { return static_cast<uint8_t>(throughs.size()); }

  bool from_clock_matches(ClockId launch) const {
    for (ClockId c : from_clocks)
      if (c == launch) return true;
    return false;
  }
  bool to_matches(PinId endpoint, ClockId capture) const {
    if (!has_to) return true;
    if (to_pins.count(endpoint.value())) return true;
    for (ClockId c : to_clocks)
      if (c == capture) return true;
    return false;
  }

  PathState state() const {
    switch (kind) {
      case ExceptionKind::kFalsePath: return PathState::false_path();
      case ExceptionKind::kMulticyclePath: return PathState::mcp(value);
      case ExceptionKind::kMinDelay: return PathState::min_delay(value);
      case ExceptionKind::kMaxDelay: return PathState::max_delay(value);
    }
    return PathState::valid();
  }

  /// Content equality — two modes with element-wise equal exception lists
  /// resolve every (progress, launch, endpoint, capture) identically.
  friend bool operator==(const CompiledException&,
                         const CompiledException&) = default;
};

class CompiledExceptions {
 public:
  CompiledExceptions(const TimingGraph& graph, const Sdc& sdc);

  size_t size() const { return exceptions_.size(); }
  const CompiledException& at(size_t i) const { return exceptions_[i]; }
  const std::vector<CompiledException>& all() const { return exceptions_; }

  /// Number of tracked exceptions == width of tag progress vectors.
  uint32_t num_tracked() const { return num_tracked_; }

  /// (exception index, through-set index) pairs to check when a tag enters
  /// `pin`.
  const std::vector<std::pair<uint32_t, uint8_t>>& throughs_at(PinId pin) const {
    return throughs_at_[pin.index()];
  }

  /// Initial progress vector for a path starting at `startpoint` with
  /// launch clock `launch` (already advanced through sets containing the
  /// startpoint itself).
  std::vector<uint8_t> initial_progress(PinId startpoint, ClockId launch) const;

  /// Advance `progress` in place for a tag entering `pin`. Returns true if
  /// anything changed.
  bool advance(std::vector<uint8_t>& progress, PinId pin) const;

  /// Resolve the PathState at an endpoint for a tag with the given progress
  /// vector (may be empty if num_tracked()==0), launch/capture clocks, and
  /// analysis side (setup or hold).
  PathState resolve(const std::vector<uint8_t>& progress, ClockId launch,
                    PinId endpoint, ClockId capture, bool setup_side) const;

  /// Both analysis sides in one pass over the exception list — exactly
  /// `resolve(.., true)` and `resolve(.., false)`, sharing the per-exception
  /// applicability checks. The batched engine's resolution hot path.
  void resolve_both(const std::vector<uint8_t>& progress, ClockId launch,
                    PinId endpoint, ClockId capture, PathState* setup_out,
                    PathState* hold_out) const;

 private:
  void compile(const TimingGraph& graph, const Sdc& sdc);

  std::vector<CompiledException> exceptions_;
  std::vector<std::vector<std::pair<uint32_t, uint8_t>>> throughs_at_;
  uint32_t num_tracked_ = 0;
};

}  // namespace mm::timing
