#pragma once
// Human-readable timing reports in the style sign-off engineers expect:
//   report_timing   — the N worst setup (or hold) paths with per-point
//                     arrival traceback, required time and slack;
//   report_clocks   — clocks, waveforms, sources and reach statistics;
//   report_relations — the paper's timing-relationship table (§2) for a
//                     mode, endpoint by endpoint.

#include <string>

#include "timing/relationships.h"

namespace mm::timing {

struct ReportTimingOptions {
  size_t max_paths = 3;   // number of worst endpoints reported
  bool hold = false;      // report min-path (hold) instead of setup
};

std::string report_timing(const TimingGraph& graph, const Sdc& sdc,
                          const ReportTimingOptions& options = {});

std::string report_clocks(const TimingGraph& graph, const Sdc& sdc);

/// The timing-relationship table (endpoint, launch, capture, states); caps
/// output at `max_rows` rows.
std::string report_relations(const TimingGraph& graph, const Sdc& sdc,
                             size_t max_rows = 50);

}  // namespace mm::timing
