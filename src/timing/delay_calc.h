#pragma once
// Per-run delay calculation: a wire-load-model slew/delay solver in the
// spirit of the paper's evaluation ("the delay calculations in STA were
// performed using wire load model approach").
//
// Every STA run recomputes arc delays from the mode's boundary conditions
// (set_input_transition / set_drive / set_load): slews propagate forward in
// topological order through a nonlinear gate model, iterated to a fixed
// point like effective-capacitance refinement. This is the dominant,
// constraint-independent cost of an STA run — exactly the cost that mode
// merging amortizes (Table 6).

#include <vector>

#include "sdc/sdc.h"
#include "timing/graph.h"

namespace mm::timing {

struct DelayCalcResult {
  std::vector<double> arc_delay;      // late (max) delays, indexed by ArcId
  std::vector<double> arc_delay_min;  // early (min) delays, for hold analysis
  std::vector<double> pin_slew;       // indexed by PinId
};

/// Compute per-arc delays for one mode. `iterations` controls the slew
/// refinement loop (>= 1); higher values model a more accurate (and more
/// expensive) delay calculator. `early_derate` scales the late delays into
/// the early (min) set — the on-chip-variation style early/late split hold
/// analysis needs.
DelayCalcResult compute_delays(const TimingGraph& graph, const sdc::Sdc& sdc,
                               int iterations = 4, double early_derate = 0.85);

}  // namespace mm::timing
