#include "timing/sta.h"

#include <algorithm>

#include "obs/obs.h"
#include "timing/delay_calc.h"
#include "util/timer.h"

namespace mm::timing {

StaResult run_sta(const TimingGraph& graph, const Sdc& sdc,
                  bool analyze_hold) {
  MM_SPAN_HOT("sta/run");
  Stopwatch timer;
  StaResult result;

  ModeGraph mode(graph, sdc);
  // Delay calculation: the per-run, constraint-independent cost every mode
  // pays (wire-load slew/delay solve), then constraint-dependent
  // propagation on top.
  const DelayCalcResult delays = compute_delays(graph, sdc, 12);
  CompiledExceptions exceptions(graph, sdc);
  Propagator prop(mode, exceptions);
  PropagationOptions options;
  options.compute_arrivals = true;
  options.arc_delays = &delays.arc_delay;
  options.arc_delays_min = &delays.arc_delay_min;
  options.analyze_hold = analyze_hold;
  prop.run(options);

  result.endpoint_slack = prop.worst_slack_by_endpoint();
  result.tag_overflow = prop.tag_overflow();
  result.num_endpoints = result.endpoint_slack.size();
  for (const auto& [ep, slack] : result.endpoint_slack) {
    if (slack < 0) {
      result.wns = std::min(result.wns, static_cast<double>(slack));
      result.tns += slack;
    }
  }
  if (analyze_hold) {
    result.endpoint_hold_slack = prop.worst_hold_slack_by_endpoint();
    for (const auto& [ep, slack] : result.endpoint_hold_slack) {
      if (slack < 0)
        result.whs = std::min(result.whs, static_cast<double>(slack));
    }
  }
  result.runtime_seconds = timer.elapsed_seconds();
  return result;
}

StaResult run_sta_multi(const TimingGraph& graph,
                        const std::vector<const Sdc*>& modes) {
  MM_SPAN("sta/multi");
  MM_COUNT("sta/modes_analyzed", modes.size());
  Stopwatch timer;
  StaResult combined;
  for (const Sdc* sdc : modes) {
    const StaResult one = run_sta(graph, *sdc);
    combined.tag_overflow |= one.tag_overflow;
    for (const auto& [ep, slack] : one.endpoint_slack) {
      auto [it, inserted] = combined.endpoint_slack.emplace(ep, slack);
      if (!inserted) it->second = std::min(it->second, slack);
    }
    for (const auto& [ep, slack] : one.endpoint_hold_slack) {
      auto [it, inserted] = combined.endpoint_hold_slack.emplace(ep, slack);
      if (!inserted) it->second = std::min(it->second, slack);
    }
  }
  combined.num_endpoints = combined.endpoint_slack.size();
  for (const auto& [ep, slack] : combined.endpoint_slack) {
    if (slack < 0) {
      combined.wns = std::min(combined.wns, static_cast<double>(slack));
      combined.tns += slack;
    }
  }
  combined.runtime_seconds = timer.elapsed_seconds();
  return combined;
}

double conformity(const StaResult& individual, const StaResult& merged,
                  const TimingGraph& graph, const Sdc& merged_sdc,
                  double tolerance_fraction) {
  if (individual.endpoint_slack.empty()) return 100.0;

  ModeGraph mode(graph, merged_sdc);
  size_t conforming = 0;
  size_t total = 0;
  for (const auto& [ep, indiv_slack] : individual.endpoint_slack) {
    ++total;
    auto it = merged.endpoint_slack.find(ep);
    if (it == merged.endpoint_slack.end()) continue;  // lost endpoint: fail

    // Tolerance: 1% of the endpoint's (smallest) capture clock period.
    double period = 0.0;
    for (const ClockArrival& ca : mode.capture_clocks_at(PinId(ep))) {
      const double p = merged_sdc.clock(ca.clock).period;
      if (period == 0.0 || p < period) period = p;
    }
    if (period == 0.0) period = 1.0;

    if (std::abs(it->second - indiv_slack) <= tolerance_fraction * period) {
      ++conforming;
    }
  }
  // Endpoints only in merged (extra pessimistic endpoints) also count
  // against conformity.
  for (const auto& [ep, slack] : merged.endpoint_slack) {
    if (!individual.endpoint_slack.count(ep)) ++total;
  }
  return total == 0 ? 100.0 : 100.0 * static_cast<double>(conforming) /
                                  static_cast<double>(total);
}

}  // namespace mm::timing
