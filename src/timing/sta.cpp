#include "timing/sta.h"

#include <algorithm>
#include <memory>

#include "obs/obs.h"
#include "timing/delay_calc.h"
#include "timing/sta_batch.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mm::timing {

StaResult run_sta(const TimingGraph& graph, const Sdc& sdc,
                  bool analyze_hold) {
  MM_SPAN_HOT("sta/run");
  Stopwatch timer;
  StaResult result;

  ModeGraph mode(graph, sdc);
  // Delay calculation: the per-run, constraint-independent cost every mode
  // pays (wire-load slew/delay solve), then constraint-dependent
  // propagation on top.
  const DelayCalcResult delays = compute_delays(graph, sdc, 12);
  CompiledExceptions exceptions(graph, sdc);
  Propagator prop(mode, exceptions);
  PropagationOptions options;
  options.compute_arrivals = true;
  options.arc_delays = &delays.arc_delay;
  options.arc_delays_min = &delays.arc_delay_min;
  options.analyze_hold = analyze_hold;
  prop.run(options);

  result.endpoint_slack = prop.worst_slack_by_endpoint();
  result.tag_overflow = prop.tag_overflow();
  result.num_endpoints = result.endpoint_slack.size();
  for (const auto& [ep, slack] : result.endpoint_slack) {
    if (slack < 0) {
      result.wns = std::min(result.wns, static_cast<double>(slack));
      result.tns += slack;
    }
  }
  if (analyze_hold) {
    result.endpoint_hold_slack = prop.worst_hold_slack_by_endpoint();
    for (const auto& [ep, slack] : result.endpoint_hold_slack) {
      if (slack < 0)
        result.whs = std::min(result.whs, static_cast<double>(slack));
    }
  }
  result.runtime_seconds = timer.elapsed_seconds();
  return result;
}

StaResult run_sta_multi(const TimingGraph& graph,
                        const std::vector<const Sdc*>& modes) {
  MM_SPAN("sta/multi");
  MM_COUNT("sta/modes_analyzed", modes.size());
  Stopwatch timer;
  StaResult combined;
  for (const Sdc* sdc : modes) {
    const StaResult one = run_sta(graph, *sdc);
    combined.tag_overflow |= one.tag_overflow;
    for (const auto& [ep, slack] : one.endpoint_slack) {
      auto [it, inserted] = combined.endpoint_slack.emplace(ep, slack);
      if (!inserted) it->second = std::min(it->second, slack);
    }
    for (const auto& [ep, slack] : one.endpoint_hold_slack) {
      auto [it, inserted] = combined.endpoint_hold_slack.emplace(ep, slack);
      if (!inserted) it->second = std::min(it->second, slack);
    }
  }
  combined.num_endpoints = combined.endpoint_slack.size();
  for (const auto& [ep, slack] : combined.endpoint_slack) {
    if (slack < 0) {
      combined.wns = std::min(combined.wns, static_cast<double>(slack));
      combined.tns += slack;
    }
  }
  combined.runtime_seconds = timer.elapsed_seconds();
  return combined;
}

BatchStaResult run_sta_batch(const TimingGraph& graph,
                             const std::vector<const Sdc*>& modes,
                             bool analyze_hold, ThreadPool* pool) {
  MM_SPAN("sta/multi_batched");
  MM_COUNT("sta/modes_analyzed", modes.size());
  Stopwatch timer;
  BatchStaResult out;
  out.per_mode.resize(modes.size());

  // Per-mode views and delays are built once up front (fanned over the
  // pool: each index writes only its own slot), then modes become lanes of
  // shared walks chunked at the mask width.
  std::vector<std::unique_ptr<ModeGraph>> mode_graphs(modes.size());
  std::vector<std::unique_ptr<CompiledExceptions>> exceptions(modes.size());
  std::vector<DelayCalcResult> delays(modes.size());
  auto build_one = [&](size_t m) {
    mode_graphs[m] = std::make_unique<ModeGraph>(graph, *modes[m]);
    exceptions[m] = std::make_unique<CompiledExceptions>(graph, *modes[m]);
    delays[m] = compute_delays(graph, *modes[m], 12);
  };
  if (pool && modes.size() > 1) {
    pool->parallel_for(modes.size(), build_one);
  } else {
    for (size_t m = 0; m < modes.size(); ++m) build_one(m);
  }

  for (size_t base = 0; base < modes.size(); base += kMaxBatchLanes) {
    const size_t count = std::min(kMaxBatchLanes, modes.size() - base);
    std::vector<StaLane> lanes(count);
    for (size_t l = 0; l < count; ++l) {
      lanes[l].mode = mode_graphs[base + l].get();
      lanes[l].exceptions = exceptions[base + l].get();
      lanes[l].arc_delays = &delays[base + l].arc_delay;
      lanes[l].arc_delays_min = &delays[base + l].arc_delay_min;
    }
    BatchPropagator prop(graph, std::move(lanes));
    BatchOptions options;
    options.compute_arrivals = true;
    options.analyze_hold = analyze_hold;
    options.pool = pool;
    prop.run(options);
    out.tag_groups += prop.shared_tag_groups();
    out.lane_tags += prop.lane_tag_total();

    for (size_t l = 0; l < count; ++l) {
      StaResult& one = out.per_mode[base + l];
      one.endpoint_slack = prop.worst_slack_by_endpoint(l);
      one.num_endpoints = one.endpoint_slack.size();
      for (const auto& [ep, slack] : one.endpoint_slack) {
        if (slack < 0) {
          one.wns = std::min(one.wns, static_cast<double>(slack));
          one.tns += slack;
        }
      }
      if (analyze_hold) {
        one.endpoint_hold_slack = prop.worst_hold_slack_by_endpoint(l);
        for (const auto& [ep, slack] : one.endpoint_hold_slack) {
          if (slack < 0)
            one.whs = std::min(one.whs, static_cast<double>(slack));
        }
      }
    }
  }

  for (const StaResult& one : out.per_mode) {
    for (const auto& [ep, slack] : one.endpoint_slack) {
      auto [it, inserted] = out.combined.endpoint_slack.emplace(ep, slack);
      if (!inserted) it->second = std::min(it->second, slack);
    }
    for (const auto& [ep, slack] : one.endpoint_hold_slack) {
      auto [it, inserted] = out.combined.endpoint_hold_slack.emplace(ep, slack);
      if (!inserted) it->second = std::min(it->second, slack);
    }
  }
  out.combined.num_endpoints = out.combined.endpoint_slack.size();
  for (const auto& [ep, slack] : out.combined.endpoint_slack) {
    if (slack < 0) {
      out.combined.wns = std::min(out.combined.wns, static_cast<double>(slack));
      out.combined.tns += slack;
    }
  }
  for (const auto& [ep, slack] : out.combined.endpoint_hold_slack) {
    if (slack < 0)
      out.combined.whs = std::min(out.combined.whs, static_cast<double>(slack));
  }
  out.combined.runtime_seconds = timer.elapsed_seconds();
  return out;
}

double conformity(const StaResult& individual, const StaResult& merged,
                  const TimingGraph& graph, const Sdc& merged_sdc,
                  double tolerance_fraction) {
  if (individual.endpoint_slack.empty()) return 100.0;

  ModeGraph mode(graph, merged_sdc);
  size_t conforming = 0;
  size_t total = 0;
  for (const auto& [ep, indiv_slack] : individual.endpoint_slack) {
    ++total;
    auto it = merged.endpoint_slack.find(ep);
    if (it == merged.endpoint_slack.end()) continue;  // lost endpoint: fail

    // Tolerance: 1% of the endpoint's (smallest) capture clock period.
    double period = 0.0;
    for (const ClockArrival& ca : mode.capture_clocks_at(PinId(ep))) {
      const double p = merged_sdc.clock(ca.clock).period;
      if (period == 0.0 || p < period) period = p;
    }
    if (period == 0.0) period = 1.0;

    if (std::abs(it->second - indiv_slack) <= tolerance_fraction * period) {
      ++conforming;
    }
  }
  // Endpoints only in merged (extra pessimistic endpoints) also count
  // against conformity.
  for (const auto& [ep, slack] : merged.endpoint_slack) {
    if (!individual.endpoint_slack.count(ep)) ++total;
  }
  return total == 0 ? 100.0 : 100.0 * static_cast<double>(conforming) /
                                  static_cast<double>(total);
}

}  // namespace mm::timing
