#include "timing/exceptions.h"

#include <algorithm>

namespace mm::timing {

using netlist::Design;

namespace {

/// Canonicalize a -from anchor pin to startpoint pins: ports stay, pins of
/// sequential instances map to the instance's clock pin(s), anything else is
/// kept verbatim (it simply never matches a startpoint).
void canonical_from(const Design& d, const TimingGraph& g, PinId pin,
                    std::unordered_set<uint32_t>& out) {
  const netlist::Pin& p = d.pin(pin);
  if (p.is_port()) {
    out.insert(pin.value());
    return;
  }
  const netlist::LibCell& cell = d.cell_of_pin(pin);
  if (cell.is_sequential()) {
    const netlist::Instance& inst = d.instance(p.inst);
    for (uint32_t i = 0; i < cell.pins().size(); ++i) {
      if (cell.pins()[i].is_clock) out.insert(inst.pins[i].value());
    }
    return;
  }
  (void)g;
  out.insert(pin.value());
}

/// Canonicalize a -to anchor pin to endpoint pins: check data pins stay;
/// other pins of sequential instances map to all the instance's check data
/// pins; ports stay; anything else kept verbatim.
void canonical_to(const Design& d, const TimingGraph& g, PinId pin,
                  std::unordered_set<uint32_t>& out) {
  const netlist::Pin& p = d.pin(pin);
  if (p.is_port() || g.is_endpoint(pin)) {
    out.insert(pin.value());
    return;
  }
  if (!p.is_port()) {
    const netlist::LibCell& cell = d.cell_of_pin(pin);
    if (cell.is_sequential()) {
      const netlist::Instance& inst = d.instance(p.inst);
      for (uint32_t i = 0; i < cell.pins().size(); ++i) {
        const PinId ip = inst.pins[i];
        if (g.is_endpoint(ip)) out.insert(ip.value());
      }
      return;
    }
  }
  out.insert(pin.value());
}

}  // namespace

CompiledExceptions::CompiledExceptions(const TimingGraph& graph, const Sdc& sdc) {
  throughs_at_.resize(graph.num_nodes());
  compile(graph, sdc);
}

void CompiledExceptions::compile(const TimingGraph& graph, const Sdc& sdc) {
  const Design& d = graph.design();

  exceptions_.reserve(sdc.exceptions().size());
  for (size_t i = 0; i < sdc.exceptions().size(); ++i) {
    const sdc::Exception& ex = sdc.exceptions()[i];
    CompiledException ce;
    ce.kind = ex.kind;
    ce.value = ex.value;
    ce.setup = ex.setup_hold.setup;
    ce.hold = ex.setup_hold.hold;
    ce.source_index = static_cast<uint32_t>(i);

    if (!ex.from.empty()) {
      ce.has_from = true;
      ce.spec_score += 4;
      for (PinId p : ex.from.pins) canonical_from(d, graph, p, ce.from_pins);
      ce.from_clocks = ex.from.clocks;
    }
    if (!ex.to.empty()) {
      ce.has_to = true;
      ce.spec_score += 2;
      for (PinId p : ex.to.pins) canonical_to(d, graph, p, ce.to_pins);
      ce.to_clocks = ex.to.clocks;
    }
    for (const sdc::ExceptionPoint& th : ex.throughs) {
      ce.spec_score += 1;
      std::unordered_set<uint32_t> set;
      for (PinId p : th.pins) set.insert(p.value());
      ce.throughs.push_back(std::move(set));
    }

    ce.tracked = !ce.from_pins.empty() || !ce.throughs.empty();
    if (ce.tracked) ce.track_slot = num_tracked_++;
    exceptions_.push_back(std::move(ce));
  }

  // Per-pin through index.
  for (uint32_t e = 0; e < exceptions_.size(); ++e) {
    const CompiledException& ce = exceptions_[e];
    for (uint8_t k = 0; k < ce.throughs.size(); ++k) {
      for (uint32_t pin : ce.throughs[k]) {
        throughs_at_[pin].push_back({e, k});
      }
    }
  }
}

std::vector<uint8_t> CompiledExceptions::initial_progress(
    PinId startpoint, ClockId launch) const {
  std::vector<uint8_t> progress(num_tracked_, kExcInactive);
  for (const CompiledException& ce : exceptions_) {
    if (!ce.tracked) continue;
    bool active = !ce.has_from || ce.from_pins.count(startpoint.value()) ||
                  ce.from_clock_matches(launch);
    if (!active) continue;
    uint8_t p = 0;
    if (p < ce.throughs.size() && ce.throughs[p].count(startpoint.value())) {
      ++p;  // startpoint itself satisfies the first -through
    }
    progress[ce.track_slot] = p;
  }
  return progress;
}

bool CompiledExceptions::advance(std::vector<uint8_t>& progress,
                                 PinId pin) const {
  bool changed = false;
  for (const auto& [e, k] : throughs_at_[pin.index()]) {
    const CompiledException& ce = exceptions_[e];
    MM_ASSERT(ce.tracked);
    uint8_t& p = progress[ce.track_slot];
    if (p == k) {
      ++p;
      changed = true;
    }
  }
  return changed;
}

PathState CompiledExceptions::resolve(const std::vector<uint8_t>& progress,
                                      ClockId launch, PinId endpoint,
                                      ClockId capture, bool setup_side) const {
  const CompiledException* best = nullptr;
  for (const CompiledException& ce : exceptions_) {
    if (setup_side ? !ce.setup : !ce.hold) continue;
    // set_min_delay constrains the min (hold) analysis, set_max_delay the
    // max (setup) analysis.
    if (setup_side && ce.kind == ExceptionKind::kMinDelay) continue;
    if (!setup_side && ce.kind == ExceptionKind::kMaxDelay) continue;
    if (ce.tracked) {
      if (progress.empty() || progress[ce.track_slot] != ce.num_throughs())
        continue;
    } else if (ce.has_from && !ce.from_clock_matches(launch)) {
      continue;
    }
    if (!ce.to_matches(endpoint, capture)) continue;

    if (!best) {
      best = &ce;
      continue;
    }
    const int rank_new = precedence_rank(ce.state().kind);
    const int rank_best = precedence_rank(best->state().kind);
    if (rank_new > rank_best) {
      best = &ce;
    } else if (rank_new == rank_best) {
      // Tie: more anchor-specific wins; then later definition wins.
      if (ce.spec_score > best->spec_score ||
          (ce.spec_score == best->spec_score &&
           ce.source_index > best->source_index)) {
        best = &ce;
      }
    }
  }
  return best ? best->state() : PathState::valid();
}

void CompiledExceptions::resolve_both(const std::vector<uint8_t>& progress,
                                      ClockId launch, PinId endpoint,
                                      ClockId capture, PathState* setup_out,
                                      PathState* hold_out) const {
  // One pass over the exception list maintaining a per-side winner under
  // the same precedence/tie rules as resolve(); the applicability checks
  // (progress / -from clock / -to anchor) are shared between the sides.
  const CompiledException* best_setup = nullptr;
  const CompiledException* best_hold = nullptr;
  auto consider = [](const CompiledException*& best,
                     const CompiledException& ce) {
    if (!best) {
      best = &ce;
      return;
    }
    const int rank_new = precedence_rank(ce.state().kind);
    const int rank_best = precedence_rank(best->state().kind);
    if (rank_new > rank_best ||
        (rank_new == rank_best &&
         (ce.spec_score > best->spec_score ||
          (ce.spec_score == best->spec_score &&
           ce.source_index > best->source_index)))) {
      best = &ce;
    }
  };
  for (const CompiledException& ce : exceptions_) {
    if (ce.tracked) {
      if (progress.empty() || progress[ce.track_slot] != ce.num_throughs())
        continue;
    } else if (ce.has_from && !ce.from_clock_matches(launch)) {
      continue;
    }
    if (!ce.to_matches(endpoint, capture)) continue;
    if (ce.setup && ce.kind != ExceptionKind::kMinDelay) {
      consider(best_setup, ce);
    }
    if (ce.hold && ce.kind != ExceptionKind::kMaxDelay) {
      consider(best_hold, ce);
    }
  }
  *setup_out = best_setup ? best_setup->state() : PathState::valid();
  *hold_out = best_hold ? best_hold->state() : PathState::valid();
}

std::string PathState::str() const {
  switch (kind) {
    case StateKind::kValid: return "V";
    case StateKind::kFalsePath: return "FP";
    case StateKind::kDisabled: return "DIS";
    case StateKind::kMcp: return "MCP(" + std::to_string(static_cast<int>(value)) + ")";
    case StateKind::kMaxDelay: return "MAX(" + std::to_string(value) + ")";
    case StateKind::kMinDelay: return "MIN(" + std::to_string(value) + ")";
  }
  return "?";
}

}  // namespace mm::timing
