#include "timing/relationships.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "util/logger.h"

namespace mm::timing {

// --- ProgressTable ---------------------------------------------------------

size_t ProgressTable::VecHash::operator()(
    const std::vector<uint8_t>& v) const noexcept {
  size_t h = 1469598103934665603ull;
  for (uint8_t b : v) h = (h ^ b) * 1099511628211ull;
  return h;
}

ProgressTable::ProgressTable(uint32_t width) {
  std::vector<uint8_t> empty(width, kExcInactive);
  table_.push_back(empty);
  ids_.emplace(std::move(empty), 0u);
}

uint32_t ProgressTable::intern(const std::vector<uint8_t>& v) {
  auto it = ids_.find(v);
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(table_.size());
  table_.push_back(v);
  ids_.emplace(table_.back(), id);
  return id;
}

// --- StateSet ---------------------------------------------------------------

void StateSet::insert(const PathState& s) {
  auto it = std::lower_bound(states.begin(), states.end(), s);
  if (it != states.end() && *it == s) return;
  states.insert(it, s);
}

bool StateSet::contains(const PathState& s) const {
  return std::binary_search(states.begin(), states.end(), s);
}

bool StateSet::contains_kind(StateKind k) const {
  for (const PathState& s : states)
    if (s.kind == k) return true;
  return false;
}

bool StateSet::all_untimed() const {
  for (const PathState& s : states)
    if (s.is_timed()) return false;
  return true;
}

bool StateSet::any_timed() const {
  for (const PathState& s : states)
    if (s.is_timed()) return true;
  return false;
}

void StateSet::merge(const StateSet& o) {
  for (const PathState& s : o.states) insert(s);
}

std::string StateSet::str() const {
  std::string out = "{";
  for (size_t i = 0; i < states.size(); ++i) {
    if (i) out += ", ";
    out += states[i].str();
  }
  return out + "}";
}

// --- Propagator -------------------------------------------------------------

Propagator::Propagator(const ModeGraph& mode,
                       const CompiledExceptions& exceptions)
    : mode_(&mode),
      exceptions_(&exceptions),
      progress_(exceptions.num_tracked()) {
  tags_.resize(mode.graph().num_nodes());
}

void Propagator::run(const PropagationOptions& options) {
  MM_SPAN_HOT("timing/relationship_propagation");
  const TimingGraph& graph = mode_->graph();

  seed(options);

  // Forward propagation in topological order.
  for (PinId pin : graph.topo_order()) {
    if (options.pin_filter && !(*options.pin_filter)[pin.index()]) continue;
    const auto& pin_tags = tags_[pin.index()];
    if (pin_tags.empty()) continue;

    // Register CP pins carry tags only into their launch arcs (the clock
    // becomes data at Q); every other pin propagates through net/comb arcs.
    bool has_launch = false;
    for (ArcId aid : graph.fanout(pin)) {
      if (graph.arc(aid).kind == ArcKind::kLaunch) has_launch = true;
    }

    for (ArcId aid : graph.fanout(pin)) {
      if (!mode_->arc_enabled(aid)) continue;
      const Arc& arc = graph.arc(aid);
      if (has_launch && arc.kind != ArcKind::kLaunch) continue;
      if (options.pin_filter && !(*options.pin_filter)[arc.to.index()]) continue;
      const double delay =
          options.arc_delays
              ? (*options.arc_delays)[aid.index()]
              : (arc.kind == ArcKind::kNet
                     ? arc.intrinsic
                     : arc.intrinsic + arc.resistance * graph.load_on(arc.to));
      const double delay_min = options.arc_delays_min
                                   ? (*options.arc_delays_min)[aid.index()]
                                   : delay;
      // Snapshot size: tags_ may reallocate if pin self-loops (cannot in a
      // DAG), but insert_tag appends to *other* pins only.
      const size_t count = pin_tags.size();
      for (size_t t = 0; t < count; ++t) {
        const Tag& tag = tags_[pin.index()][t];
        insert_tag(arc.to, tag.launch, tag.progress, tag.startpoint,
                   tag.amin + static_cast<float>(delay_min),
                   tag.amax + static_cast<float>(delay),
                   /*advance=*/true, options.max_tags_per_pin);
      }
    }
  }

  // Resolve relations at endpoints.
  for (PinId ep : mode_->active_endpoints()) {
    if (options.pin_filter && !(*options.pin_filter)[ep.index()]) continue;
    resolve_endpoint(ep, options);
  }

  size_t num_tags = 0;
  for (const auto& pin_tags : tags_) num_tags += pin_tags.size();
  MM_COUNT("timing/tags", num_tags);
  MM_COUNT("timing/relations", relations_.size());
  MM_COUNT("timing/propagations", 1);
}

void Propagator::seed(const PropagationOptions& options) {
  const std::vector<PinId>& sps =
      options.startpoints ? *options.startpoints : mode_->active_startpoints();
  for (PinId sp : sps) {
    if (options.pin_filter && !(*options.pin_filter)[sp.index()]) continue;
    seed_startpoint(sp, options);
  }
}

void Propagator::seed_startpoint(PinId sp, const PropagationOptions& options) {
  const netlist::Design& d = mode_->graph().design();
  const PinId tracked_sp = options.track_startpoints ? sp : PinId();
  const Sdc& sdc = mode_->sdc();

  if (d.pin(sp).is_port()) {
    // Input port: one tag per set_input_delay entry.
    for (const sdc::PortDelay& pd : sdc.port_delays()) {
      if (!pd.is_input || pd.port_pin != sp) continue;
      double edge = 0.0;
      if (pd.clock.valid()) {
        const sdc::Clock& c = sdc.clock(pd.clock);
        edge = pd.clock_fall && c.waveform.size() > 1 ? c.waveform[1]
                                                      : c.waveform.empty() ? 0.0 : c.waveform[0];
      }
      const float arrival = static_cast<float>(edge + pd.value);
      const uint32_t prog =
          progress_.intern(exceptions_->initial_progress(sp, pd.clock));
      insert_tag(sp, pd.clock, prog, tracked_sp, arrival, arrival,
                 /*advance=*/false, options.max_tags_per_pin);
    }
    return;
  }

  // Register clock pin: one tag per arriving clock.
  for (const ClockArrival& ca : mode_->clocks_on(sp)) {
    const sdc::Clock& clock = sdc.clock(ca.clock);
    const double latency =
        mode_->source_latency(ca.clock) +
        (clock.propagated ? ca.latency : mode_->ideal_network_latency(ca.clock));
    const double edge = clock.waveform.empty() ? 0.0 : clock.waveform[0];
    const float arrival = static_cast<float>(latency + edge);
    const uint32_t prog =
        progress_.intern(exceptions_->initial_progress(sp, ca.clock));
    insert_tag(sp, ca.clock, prog, tracked_sp, arrival, arrival,
               /*advance=*/false, options.max_tags_per_pin);
  }
}

void Propagator::insert_tag(PinId pin, ClockId launch, uint32_t progress_pre,
                            PinId startpoint, float amin, float amax,
                            bool advance, size_t max_tags) {
  uint32_t progress = progress_pre;
  if (advance && exceptions_->num_tracked() > 0) {
    if (!exceptions_->throughs_at(pin).empty()) {
      std::vector<uint8_t> vec = progress_.get(progress_pre);
      if (exceptions_->advance(vec, pin)) progress = progress_.intern(vec);
    }
  }
  auto& vec = tags_[pin.index()];
  for (Tag& t : vec) {
    if (t.launch == launch && t.progress == progress &&
        t.startpoint == startpoint) {
      t.amin = std::min(t.amin, amin);
      t.amax = std::max(t.amax, amax);
      return;
    }
  }
  if (max_tags != 0 && vec.size() >= max_tags) {
    tag_overflow_ = true;
    return;
  }
  vec.push_back({launch, progress, startpoint, amin, amax});
}

double Propagator::hold_relation(ClockId launch, ClockId capture,
                                 double mcp_shift) const {
  // The hold check references the capture edge closest to (at or before)
  // the launch edge — zero for identically-aligned clocks. A hold
  // multicycle (set_multicycle_path -hold N) relaxes the check by N capture
  // periods (moves it N edges earlier).
  const Sdc& sdc = mode_->sdc();
  constexpr double kEps = 1e-9;
  const sdc::Clock& cap = sdc.clock(capture);
  const double cap_edge = cap.waveform.empty() ? 0.0 : cap.waveform[0];
  double launch_edge = 0.0;
  if (launch.valid()) {
    const sdc::Clock& l = sdc.clock(launch);
    launch_edge = l.waveform.empty() ? 0.0 : l.waveform[0];
  }
  const double k = std::floor((launch_edge - cap_edge) / cap.period + kEps);
  double tc = cap_edge + k * cap.period;
  if (mcp_shift > 0.0) tc -= mcp_shift * cap.period;
  return tc - launch_edge;  // <= 0: capture-edge offset from launch edge
}

double Propagator::setup_relation(ClockId launch, ClockId capture,
                                  double mcp_mult) const {
  const Sdc& sdc = mode_->sdc();
  constexpr double kEps = 1e-9;
  const sdc::Clock& cap = sdc.clock(capture);
  const double cap_edge = cap.waveform.empty() ? 0.0 : cap.waveform[0];
  double launch_edge = 0.0;
  if (launch.valid()) {
    const sdc::Clock& l = sdc.clock(launch);
    launch_edge = l.waveform.empty() ? 0.0 : l.waveform[0];
  }
  // Smallest capture rise edge strictly after the launch edge
  // (single-edge approximation of the common-period expansion).
  double k = std::floor((launch_edge - cap_edge) / cap.period + kEps) + 1.0;
  if (k < 0) k = std::ceil(-(cap_edge - launch_edge) / cap.period);
  double tc = cap_edge + k * cap.period;
  if (tc <= launch_edge + kEps) tc += cap.period;
  if (mcp_mult > 1.0) tc += (mcp_mult - 1.0) * cap.period;
  return tc - launch_edge;  // distance from launch edge
}

void Propagator::resolve_endpoint(PinId endpoint,
                                  const PropagationOptions& options) {
  const netlist::Design& d = mode_->graph().design();
  const Sdc& sdc = mode_->sdc();
  const auto& pin_tags = tags_[endpoint.index()];
  if (pin_tags.empty()) return;

  const bool is_port = d.pin(endpoint).is_port();

  // Setup/hold times at this endpoint (library check) — ports use output
  // delay as the "check" instead.
  double setup_time = 0.0;
  double hold_time = 0.0;
  if (!is_port) {
    for (uint32_t ci : mode_->graph().checks_at(endpoint)) {
      setup_time = std::max(setup_time, mode_->graph().checks()[ci].setup);
      hold_time = std::max(hold_time, mode_->graph().checks()[ci].hold);
    }
  }

  for (const ClockArrival& cap : mode_->capture_clocks_at(endpoint)) {
    const sdc::Clock& cap_clock = sdc.clock(cap.clock);
    const double cap_lat =
        mode_->source_latency(cap.clock) +
        (cap_clock.propagated ? cap.latency
                              : mode_->ideal_network_latency(cap.clock));
    const double unc = mode_->uncertainty(cap.clock);

    double output_delay = 0.0;
    if (is_port) {
      for (const sdc::PortDelay& pd : sdc.port_delays()) {
        if (!pd.is_input && pd.port_pin == endpoint && pd.clock == cap.clock &&
            pd.minmax.max) {
          output_delay = std::max(output_delay, pd.value);
        }
      }
    }

    for (const Tag& tag : pin_tags) {
      PathState state;
      const bool exclusive =
          tag.launch.valid() &&
          (sdc.clocks_exclusive(tag.launch, cap.clock) ||
           sdc.clocks_async(tag.launch, cap.clock));
      if (exclusive) {
        state = PathState::false_path();
      } else {
        state = exceptions_->resolve(progress_.get(tag.progress), tag.launch,
                                     endpoint, cap.clock, /*setup_side=*/true);
      }

      RelationKey key;
      key.endpoint = endpoint;
      key.startpoint = tag.startpoint;
      key.launch = tag.launch;
      key.capture = cap.clock;
      RelationData& data = relations_[key];
      data.states.insert(state);

      if (options.analyze_hold) {
        PathState hold_state;
        if (exclusive) {
          hold_state = PathState::false_path();
        } else {
          hold_state =
              exceptions_->resolve(progress_.get(tag.progress), tag.launch,
                                   endpoint, cap.clock, /*setup_side=*/false);
        }
        data.hold_states.insert(hold_state);
        if (options.compute_arrivals && hold_state.is_timed()) {
          const double hold_unc = mode_->hold_uncertainty(cap.clock);
          double slack;
          if (hold_state.kind == StateKind::kMinDelay) {
            slack = tag.amin - hold_state.value;
          } else {
            const double shift =
                hold_state.kind == StateKind::kMcp ? hold_state.value : 0.0;
            const double tc = hold_relation(tag.launch, cap.clock, shift);
            double launch_edge = 0.0;
            if (tag.launch.valid()) {
              const sdc::Clock& l = sdc.clock(tag.launch);
              launch_edge = l.waveform.empty() ? 0.0 : l.waveform[0];
            }
            const double required =
                launch_edge + tc + cap_lat + hold_unc + hold_time;
            slack = tag.amin - required;
          }
          data.worst_hold_slack =
              std::min(data.worst_hold_slack, static_cast<float>(slack));
        }
      }

      if (options.compute_arrivals && state.is_timed()) {
        double slack;
        if (state.kind == StateKind::kMaxDelay) {
          slack = state.value - tag.amax;
        } else {
          const double mult = state.kind == StateKind::kMcp ? state.value : 1.0;
          const double tc = setup_relation(tag.launch, cap.clock, mult);
          double launch_edge = 0.0;
          if (tag.launch.valid()) {
            const sdc::Clock& l = sdc.clock(tag.launch);
            launch_edge = l.waveform.empty() ? 0.0 : l.waveform[0];
          }
          const double required =
              launch_edge + tc + cap_lat - unc - setup_time - output_delay;
          slack = required - tag.amax;
        }
        if (slack < data.worst_slack) {
          data.worst_slack = static_cast<float>(slack);
          data.worst_capture = cap.clock;
        }
        data.worst_arrival = std::max(data.worst_arrival, tag.amax);
      }
    }
  }
}

std::unordered_map<uint32_t, float> Propagator::worst_slack_by_endpoint() const {
  std::unordered_map<uint32_t, float> out;
  for (const auto& [key, data] : relations_) {
    if (data.worst_slack >= 1e29f) continue;  // nothing timed
    auto [it, inserted] = out.emplace(key.endpoint.value(), data.worst_slack);
    if (!inserted) it->second = std::min(it->second, data.worst_slack);
  }
  return out;
}

std::unordered_map<uint32_t, float> Propagator::worst_hold_slack_by_endpoint()
    const {
  std::unordered_map<uint32_t, float> out;
  for (const auto& [key, data] : relations_) {
    if (data.worst_hold_slack >= 1e29f) continue;
    auto [it, inserted] = out.emplace(key.endpoint.value(), data.worst_hold_slack);
    if (!inserted) it->second = std::min(it->second, data.worst_hold_slack);
  }
  return out;
}

std::vector<uint8_t> Propagator::fanin_cone(const ModeGraph& mode,
                                            const std::vector<PinId>& from_pins) {
  const TimingGraph& graph = mode.graph();
  std::vector<uint8_t> mask(graph.num_nodes(), 0);
  std::vector<PinId> stack;
  for (PinId p : from_pins) {
    if (!mask[p.index()]) {
      mask[p.index()] = 1;
      stack.push_back(p);
    }
  }
  while (!stack.empty()) {
    const PinId pin = stack.back();
    stack.pop_back();
    for (ArcId aid : graph.fanin(pin)) {
      if (!mode.arc_enabled(aid)) continue;
      const PinId from = graph.arc(aid).from;
      if (!mask[from.index()]) {
        mask[from.index()] = 1;
        stack.push_back(from);
      }
    }
  }
  return mask;
}

}  // namespace mm::timing
