#pragma once
// Minimal leveled logger. Atomic global level, printf-style formatting,
// thread-safe line emission. Tools print to stderr so benchmark table
// output on stdout stays machine-readable.
//
// Optional prefix styles add a wall-clock timestamp and a small sequential
// thread id to every line ("[mm 12:34:56.789 t2 warn] ..."), for
// correlating log lines with trace spans from multi-threaded phases.
//
// Warning / error totals are counted (atomically, regardless of the level
// filter) so the observability layer can surface them in --stats-out.

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace mm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

enum class LogPrefixStyle {
  kPlain,       // "[mm:warn] "
  kTimestamped  // "[mm 12:34:56.789 t2 warn] "
};

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  static LogPrefixStyle prefix_style();
  static void set_prefix_style(LogPrefixStyle style);

  /// Totals of MM_WARN / MM_ERROR call sites hit since process start (or
  /// the last reset_counts()); counted even when the line is suppressed by
  /// the level filter so the stats report reflects ground truth.
  static uint64_t warn_count();
  static uint64_t error_count();
  static void reset_counts();

  static void log(LogLevel lvl, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));
};

}  // namespace mm

#define MM_DEBUG(...) ::mm::Logger::log(::mm::LogLevel::kDebug, __VA_ARGS__)
#define MM_INFO(...) ::mm::Logger::log(::mm::LogLevel::kInfo, __VA_ARGS__)
#define MM_WARN(...) ::mm::Logger::log(::mm::LogLevel::kWarn, __VA_ARGS__)
#define MM_ERROR(...) ::mm::Logger::log(::mm::LogLevel::kError, __VA_ARGS__)
