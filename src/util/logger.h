#pragma once
// Minimal leveled logger. Global level, printf-style formatting, thread-safe
// line emission. Tools print to stderr so benchmark table output on stdout
// stays machine-readable.

#include <cstdarg>
#include <cstdio>

namespace mm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);

  static void log(LogLevel lvl, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));
};

}  // namespace mm

#define MM_DEBUG(...) ::mm::Logger::log(::mm::LogLevel::kDebug, __VA_ARGS__)
#define MM_INFO(...) ::mm::Logger::log(::mm::LogLevel::kInfo, __VA_ARGS__)
#define MM_WARN(...) ::mm::Logger::log(::mm::LogLevel::kWarn, __VA_ARGS__)
#define MM_ERROR(...) ::mm::Logger::log(::mm::LogLevel::kError, __VA_ARGS__)
