#pragma once
// Error handling primitives for modemerge.
//
// Internal invariant violations use MM_ASSERT (aborts in all build types —
// a timing tool that continues past a broken invariant produces silently
// wrong sign-off data, which is worse than a crash). User-facing errors
// (bad SDC, bad netlist) throw mm::Error with a formatted message.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mm {

/// Exception for user-facing errors: malformed SDC, inconsistent netlist,
/// unsatisfiable constraints. Carries a human-readable message.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string msg) : std::runtime_error(std::move(msg)) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "modemerge: internal error: %s (%s) at %s:%d\n",
               msg ? msg : "assertion failed", expr, file, line);
  std::abort();
}

}  // namespace mm

#define MM_ASSERT(expr)                                          \
  do {                                                           \
    if (!(expr)) ::mm::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define MM_ASSERT_MSG(expr, msg)                                 \
  do {                                                           \
    if (!(expr)) ::mm::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
