#pragma once
// Glob matching with SDC semantics: '*' matches any run of characters,
// '?' matches exactly one. Used by object queries (get_pins, get_ports, ...).

#include <string_view>

namespace mm {

/// True iff `text` matches `pattern` (supports '*' and '?').
bool glob_match(std::string_view pattern, std::string_view text);

/// True iff `pattern` contains a glob metacharacter ('*' or '?').
bool is_glob(std::string_view pattern);

}  // namespace mm
