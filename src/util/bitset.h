#pragma once
// Dynamic bitset sized at runtime. Used for reachability cones and
// per-exception match masks during relationship propagation.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace mm {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t bits, bool value = false)
      : bits_(bits),
        words_((bits + 63) / 64, value ? ~uint64_t{0} : uint64_t{0}) {
    trim();
  }

  size_t size() const { return bits_; }

  void resize(size_t bits, bool value = false) {
    const size_t old_words = words_.size();
    bits_ = bits;
    words_.resize((bits + 63) / 64, value ? ~uint64_t{0} : uint64_t{0});
    if (value && old_words > 0 && old_words <= words_.size()) {
      // Newly exposed bits in the previously-last word stay 0; acceptable for
      // our uses (we only grow with value=false).
    }
    trim();
  }

  bool test(size_t i) const {
    MM_ASSERT(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(size_t i, bool value = true) {
    MM_ASSERT(i < bits_);
    if (value)
      words_[i >> 6] |= uint64_t{1} << (i & 63);
    else
      words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  size_t count() const {
    size_t n = 0;
    for (auto w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  DynamicBitset& operator|=(const DynamicBitset& o) {
    MM_ASSERT(bits_ == o.bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  DynamicBitset& operator&=(const DynamicBitset& o) {
    MM_ASSERT(bits_ == o.bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  /// True if any bit is set in both. Sizes may differ: bits beyond the
  /// shorter bitset cannot intersect, so only the common words are scanned.
  bool intersects(const DynamicBitset& o) const {
    const size_t n = std::min(words_.size(), o.words_.size());
    for (size_t i = 0; i < n; ++i) {
      if (words_[i] & o.words_[i]) return true;
    }
    return false;
  }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

 private:
  void trim() {
    // Keep unused high bits zero so operator== and count() stay exact.
    if (bits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (bits_ % 64)) - 1;
    }
  }

  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mm
