#include "util/logger.h"

#include <atomic>
#include <chrono>
#include <ctime>
#include <mutex>

namespace mm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<LogPrefixStyle> g_prefix_style{LogPrefixStyle::kPlain};
std::atomic<uint64_t> g_warns{0};
std::atomic<uint64_t> g_errors{0};
std::mutex g_mutex;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    default: return "?";
  }
}

uint32_t thread_log_id() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void print_prefix(LogLevel lvl) {
  if (g_prefix_style.load(std::memory_order_relaxed) ==
      LogPrefixStyle::kPlain) {
    std::fprintf(stderr, "[mm:%s] ", level_name(lvl));
    return;
  }
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  std::fprintf(stderr, "[mm %02d:%02d:%02d.%03d t%u %s] ", tm.tm_hour,
               tm.tm_min, tm.tm_sec, static_cast<int>(ms), thread_log_id(),
               level_name(lvl));
}

}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

LogPrefixStyle Logger::prefix_style() {
  return g_prefix_style.load(std::memory_order_relaxed);
}

void Logger::set_prefix_style(LogPrefixStyle style) {
  g_prefix_style.store(style, std::memory_order_relaxed);
}

uint64_t Logger::warn_count() {
  return g_warns.load(std::memory_order_relaxed);
}

uint64_t Logger::error_count() {
  return g_errors.load(std::memory_order_relaxed);
}

void Logger::reset_counts() {
  g_warns.store(0, std::memory_order_relaxed);
  g_errors.store(0, std::memory_order_relaxed);
}

void Logger::log(LogLevel lvl, const char* fmt, ...) {
  if (lvl == LogLevel::kWarn) g_warns.fetch_add(1, std::memory_order_relaxed);
  if (lvl == LogLevel::kError)
    g_errors.fetch_add(1, std::memory_order_relaxed);
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  print_prefix(lvl);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace mm
