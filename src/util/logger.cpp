#include "util/logger.h"

#include <atomic>
#include <mutex>

namespace mm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* prefix(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    default: return "?";
  }
}

}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

void Logger::log(LogLevel lvl, const char* fmt, ...) {
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[mm:%s] ", prefix(lvl));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace mm
