#pragma once
// String interning. Every name in the netlist / SDC / timing data model is
// interned once into a StringPool and referred to by a 32-bit Symbol.
// Symbols from the same pool compare by value; lookup is O(1) amortized.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/error.h"

namespace mm {

/// Handle to an interned string. 0 is reserved for the empty/invalid symbol.
class Symbol {
 public:
  constexpr Symbol() = default;
  constexpr explicit Symbol(uint32_t id) : id_(id) {}

  constexpr uint32_t id() const { return id_; }
  constexpr bool valid() const { return id_ != 0; }
  constexpr explicit operator bool() const { return valid(); }

  friend constexpr bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend constexpr bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend constexpr bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  uint32_t id_ = 0;
};

/// Owning pool of interned strings. Not thread-safe for interning; concurrent
/// read-only access (str()) is safe once interning is done.
class StringPool {
 public:
  StringPool() { storage_.emplace_back(); /* id 0 = empty */ }

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  // Moving is safe: deque move steals storage, so the string_view keys in
  // map_ keep pointing at valid strings.
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  /// Intern `s`, returning the same Symbol for equal strings.
  Symbol intern(std::string_view s) {
    if (s.empty()) return Symbol();
    auto it = map_.find(s);
    if (it != map_.end()) return Symbol(it->second);
    const uint32_t id = static_cast<uint32_t>(storage_.size());
    storage_.emplace_back(s);
    map_.emplace(storage_.back(), id);
    return Symbol(id);
  }

  /// Find an existing symbol without interning; invalid Symbol if absent.
  Symbol find(std::string_view s) const {
    if (s.empty()) return Symbol();
    auto it = map_.find(s);
    return it == map_.end() ? Symbol() : Symbol(it->second);
  }

  std::string_view str(Symbol sym) const {
    MM_ASSERT(sym.id() < storage_.size());
    return storage_[sym.id()];
  }

  size_t size() const { return storage_.size() - 1; }

 private:
  // deque: stable addresses so string_view keys into map_ stay valid.
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, uint32_t> map_;
};

}  // namespace mm

template <>
struct std::hash<mm::Symbol> {
  size_t operator()(mm::Symbol s) const noexcept {
    return std::hash<uint32_t>{}(s.id());
  }
};
