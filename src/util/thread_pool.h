#pragma once
// Fixed-size thread pool with a parallel_for helper.
//
// The paper's engine is "implemented with a multithreaded engine in C++";
// we parallelize per-mode relationship propagation and per-endpoint
// comparison. parallel_for guarantees deterministic results because each
// index writes only its own slot; the caller merges in index order.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mm {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool; blocks until done.
  /// Exceptions from fn propagate to the caller (first one wins).
  void parallel_for(size_t count, const std::function<void(size_t)>& fn);

  /// Same, with a minimum chunk size: at least `min_grain` consecutive
  /// indices per task, for loops whose per-index work is too cheap to pay
  /// one queue round-trip each (e.g. one mergeability pair check).
  void parallel_for(size_t count, size_t min_grain,
                    const std::function<void(size_t)>& fn);

  /// Process-wide default pool (lazily constructed, hardware threads).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mm
