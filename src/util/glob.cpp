#include "util/glob.h"

namespace mm {

bool is_glob(std::string_view pattern) {
  return pattern.find_first_of("*?") != std::string_view::npos;
}

// Iterative two-pointer matcher with backtracking over the last '*'.
// O(|pattern| * |text|) worst case, linear in practice.
bool glob_match(std::string_view pattern, std::string_view text) {
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos;  // position of last '*' in pattern
  size_t match = 0;                      // text position matched by that '*'

  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace mm
