#pragma once
// Strongly-typed 32-bit ids. All netlist/timing objects are referenced by
// ids into contiguous vectors; the Tag parameter prevents mixing a PinId
// with a NetId at compile time.

#include <cstdint>
#include <functional>
#include <limits>

namespace mm {

template <class Tag>
class Id {
 public:
  static constexpr uint32_t kInvalid = std::numeric_limits<uint32_t>::max();

  constexpr Id() = default;
  constexpr explicit Id(uint32_t v) : v_(v) {}
  constexpr explicit Id(size_t v) : v_(static_cast<uint32_t>(v)) {}

  constexpr uint32_t value() const { return v_; }
  constexpr size_t index() const { return v_; }
  constexpr bool valid() const { return v_ != kInvalid; }
  constexpr explicit operator bool() const { return valid(); }

  friend constexpr bool operator==(Id a, Id b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Id a, Id b) { return a.v_ < b.v_; }

 private:
  uint32_t v_ = kInvalid;
};

}  // namespace mm

template <class Tag>
struct std::hash<mm::Id<Tag>> {
  size_t operator()(mm::Id<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};
