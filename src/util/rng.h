#pragma once
// util::Rng — the repo's single deterministic random source (splitmix64).
//
// Every piece of randomness (design/mode generation, property tests, the
// fuzz harness) routes through this type so any finding replays from one
// integer seed. splitmix64 is tiny, fast, passes BigCrush for this use,
// and — critically — has no global state: an Rng is just a uint64_t, so
// deriving independent streams (`fork`) is a pure function of the parent
// seed. Generators that historically carried their own local copy of this
// mixer (design_gen, mode_gen, test_property) now use it directly; the
// sequences are bit-identical to the old local structs.

#include <cstddef>
#include <cstdint>

namespace mm::util {

struct Rng {
  uint64_t state;

  explicit Rng(uint64_t seed) : state(seed + 0x9e3779b97f4a7c15ull) {}

  /// Next 64 random bits.
  uint64_t next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); returns 0 for n == 0.
  size_t below(size_t n) { return n == 0 ? 0 : next() % n; }

  /// True with the given percent probability.
  bool chance(int percent) {
    return below(100) < static_cast<size_t>(percent);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) *
                    (static_cast<double>(next() >> 11) * 0x1.0p-53);
  }

  /// One element of a fixed pool.
  template <typename T, size_t N>
  const T& pick(const T (&pool)[N]) {
    return pool[below(N)];
  }

  /// Stateless seed derivation: mixes (seed, stream) into an independent
  /// sub-seed. Used to give each fuzz iteration / generator feature its own
  /// stream without perturbing sibling streams.
  static uint64_t mix(uint64_t seed, uint64_t stream) {
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Instance form of `mix` on the current state (does not advance it).
  uint64_t fork(uint64_t stream) const { return mix(state, stream); }
};

}  // namespace mm::util
