#include "util/thread_pool.h"

#include <atomic>
#include <exception>

namespace mm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(size_t count,
                              const std::function<void(size_t)>& fn) {
  parallel_for(count, /*min_grain=*/1, fn);
}

void ThreadPool::parallel_for(size_t count, size_t min_grain,
                              const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (min_grain == 0) min_grain = 1;
  if (count <= min_grain || count == 1 || num_threads() == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Dynamic chunking: enough chunks per worker for load balance without
  // drowning in queue overhead.
  const size_t chunks = std::min(count, num_threads() * 4);
  size_t chunk_size = (count + chunks - 1) / chunks;
  if (chunk_size < min_grain) chunk_size = min_grain;

  std::atomic<size_t> remaining{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  size_t issued = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t begin = 0; begin < count; begin += chunk_size) {
      const size_t end = std::min(begin + chunk_size, count);
      ++issued;
      tasks_.push([&, begin, end] {
        try {
          for (size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!error) error = std::current_exception();
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
    remaining.store(issued, std::memory_order_release);
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });

  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mm
