#pragma once
// Fuzz-corpus I/O: a minimized finding is written as one directory holding
// a `manifest.txt` (schema mm.fuzzcase/1: case seed, violated property,
// injected mutation, design parameters) plus one .sdc file per mode. The
// checked-in corpus under tests/fuzz_corpus/ doubles as a deterministic
// regression suite: every case must pass all properties clean, and — when
// it was found under an injected mutation — must still be *caught* when
// that mutation is re-applied, so the oracle can never silently dull.

#include <string>
#include <vector>

#include "fuzz/fuzz.h"

namespace mm::fuzz {

/// `root/case_NNN` (three digits, zero-padded).
std::string corpus_case_dir(const std::string& root, size_t index);

/// Write manifest + mode files; creates the directory. Throws mm::Error on
/// I/O failure.
void write_corpus_case(const std::string& dir, const Finding& finding);

/// Read a case directory back. Throws mm::Error on a missing or malformed
/// manifest.
Finding read_corpus_case(const std::string& dir);

/// All case directories under `root` (subdirectories containing a
/// manifest.txt), sorted by name.
std::vector<std::string> list_corpus(const std::string& root);

struct ReplayResult {
  std::string dir;
  bool clean_ok = false;     // all properties pass with no injection
  bool inject_caught = true; // recorded mutation still trips its property
  std::string detail;
  bool ok() const { return clean_ok && inject_caught; }
};

/// Replay one corpus case: clean run must be violation-free; if the
/// manifest records an injected mutation, a second run with it applied
/// must reproduce a violation of the recorded property.
ReplayResult replay_corpus_case(const std::string& dir, size_t threads = 0);

}  // namespace mm::fuzz
