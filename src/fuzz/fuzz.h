#pragma once
// mm::fuzz — property-based differential fuzzing of the merge pipeline.
//
// The paper's central claim (§2) is that a merged superset mode is
// *equivalent* to each source mode. The engine additionally promises three
// pairs of must-agree execution paths (string vs interned keys, serial vs
// parallel mergeability, cached vs cold extraction). This harness
// industrializes those promises into a randomized, self-checking oracle:
//
//   1. generate a random design + mode family (gen::design_gen /
//      gen::mode_gen through a widened parameter space: generated clocks,
//      MCPs, min/max-delay, case analysis, disabled arcs, clock-group
//      topologies), then mutate the SDC *text* (drop / duplicate / reorder
//      / perturb constraint lines);
//   2. run the full merge flow and assert machine-checkable properties —
//      see check_case for the property set;
//   3. on any violation, delta-debug the case down to a minimal repro
//      (fewest modes, fewest constraint lines, smallest design), write it
//      to a corpus directory, and print the one-line seed that replays it.
//
// Every random decision flows from FuzzOptions::seed through util::Rng, so
// `modemerge_fuzz --case-seed N` reproduces any single case exactly.
//
// Mutation testing: MergeOptions::debug_mutation (merge/types.h) injects a
// known pipeline bug; a healthy oracle must catch it. The corpus replay
// keeps both directions as regressions: a checked-in case must pass clean
// AND still be caught under its recorded injection.

#include <string>
#include <vector>

#include "gen/design_gen.h"
#include "gen/mode_gen.h"
#include "merge/types.h"
#include "util/rng.h"

namespace mm::fuzz {

struct FuzzOptions {
  uint64_t seed = 1;
  size_t iters = 100;
  /// Generated family size range: 2..max_modes modes per case.
  size_t max_modes = 6;
  /// Design size cap (registers); keeps one iteration in the tens of ms.
  size_t max_regs = 90;
  /// Merge threads for the baseline configuration (0 = hardware).
  size_t threads = 0;
  /// Baseline validation engine: batched multi-lane STA (default) or the
  /// serial per-mode reference (--no-batched-sta). P1's equivalence oracle
  /// exercises whichever is selected.
  bool use_batched_sta = true;
  /// Enable the SDC-text mutation stage.
  bool mutate_sdc = true;
  // Property toggles.
  bool check_equiv = true;        // P1: two-sided equivalence per clique
  bool check_parity = true;       // P2: config byte-parity
  bool check_idempotence = true;  // P3: merge(S, S) == merge(S)
  bool check_cover = true;        // P4: clique-cover validity + maximality
  bool check_incremental = true;  // P5: MergeSession delta == batch rebuild
  bool check_sharded = true;      // P6: sharded (K in {2,4,8}) == unsharded
  bool check_policy = true;       // P7: windowed policy never-optimistic +
                                  //     bounded pessimism on a case-seeded
                                  //     near-miss family
  bool check_mcmm = true;         // P8: corner-aware MCMM parity — C == 1
                                  //     engine identity + per-corner byte
                                  //     parity to independent flat merges
  /// Corner-count cap for P8's generated matrix (cases draw 2..max_corners).
  size_t max_corners = 4;
  /// Cliques per case put through the idempotence re-merge (cost control).
  size_t idempotence_cliques = 2;
  /// Stop after this many violations (each is minimized first).
  size_t max_violations = 1;
  /// Write minimized repros under this directory ("" = don't).
  std::string corpus_dir;
  /// Injected pipeline bug for oracle mutation testing (kNone = off).
  merge::DebugMutation inject = merge::DebugMutation::kNone;
  /// Run the minimizer on each violation found.
  bool minimize = true;
};

/// One generated scenario: everything needed to rebuild the design and the
/// mode family from scratch (the SDC text is stored post-mutation).
struct FuzzCase {
  uint64_t case_seed = 0;
  gen::DesignParams design;
  std::vector<std::string> mode_names;
  std::vector<std::string> mode_sdc;
};

struct Violation {
  std::string property;  // "equivalence" | "parity" | "idempotence" |
                         // "cover" | "incremental" | "sharded" | "policy" |
                         // "mcmm"
  std::string detail;    // human-readable first finding
};

/// Outcome of checking one case.
struct CheckResult {
  bool parsed = false;  // false => case rejected (mutation broke the SDC)
  std::string parse_error;
  size_t cliques = 0;
  std::vector<Violation> violations;
  bool ok() const { return parsed && violations.empty(); }
};

/// One minimized finding, ready for the corpus.
struct Finding {
  FuzzCase repro;
  Violation violation;
  merge::DebugMutation inject = merge::DebugMutation::kNone;
  size_t minimize_runs = 0;  // predicate evaluations spent shrinking
};

struct FuzzReport {
  size_t iterations = 0;
  size_t rejected = 0;        // unparsable after mutation
  size_t modes_generated = 0;
  size_t cliques_checked = 0;
  std::vector<Finding> findings;
  double seconds = 0.0;
  bool ok() const { return findings.empty(); }
};

/// The case seed for iteration k of a run: util::Rng::mix(seed, k).
/// Printed on every violation so one integer replays the exact case.
inline uint64_t case_seed_for(uint64_t seed, uint64_t iteration) {
  return util::Rng::mix(seed, iteration);
}

/// Deterministically generate the case for a case seed.
FuzzCase generate_case(const FuzzOptions& options, uint64_t case_seed);

/// SDC-text mutation stage: drop / duplicate / swap / numerically perturb
/// constraint lines. Deterministic in `rng`.
std::string mutate_sdc_text(const std::string& text, util::Rng& rng);

/// Run the merge flow on one case and evaluate every enabled property:
///   P1 equivalence:  per clique, zero optimism violations, and zero
///                    pessimism keys unless the refinement explicitly
///                    accounted for them (stats.unresolved_pessimism);
///   P2 parity:       cliques and merged SDC bytes identical between the
///                    baseline configuration and the flipped one
///                    (string keys, cold extraction, single thread);
///   P3 idempotence:  re-merging a merged superset mode with itself yields
///                    the same bytes (merge is a fixpoint);
///   P4 cover:        the clique cover partitions the modes, every
///                    in-clique pair is mergeable (re-checked through the
///                    reference Sdc-pair path), and the cover is maximal —
///                    a mode in a later clique conflicts with at least one
///                    member of every earlier clique;
///   P5 incremental:  a MergeSession driven through a case-seeded random
///                    add / remove / update sequence (with interleaved
///                    commits) ends byte-identical to a from-scratch batch
///                    merge of its final live modes — same clique cover,
///                    same mergeability edges and reason strings, same
///                    merged SDC bytes, same count-valued stats;
///   P6 sharded:      a ShardedMergeSession at K in {2, 4, 8} — block
///                    partitioning, per-shard checks, boundary stitch —
///                    ends byte-identical to the unsharded baseline on
///                    mergeability edges, reasons, clique cover, and
///                    merged SDC bytes;
///   P7 policy:       a case-seeded near-miss family (gen/mode_gen.h:
///                    carrier gaps alternating W -/+ eps around the window
///                    boundary, every windowed field present in every mode)
///                    merged under MergePolicy::uniform(W) must decide the
///                    boundary correctly on both sides (exact: G cliques,
///                    windowed: exactly ceil(G/2)), record in-budget window
///                    provenance on every accepted pair, and pass the
///                    merge/qor.h oracle: merged decks NEVER optimistic vs
///                    the worst individual mode (hard), pessimism within
///                    MergePolicy::pessimism_bound() when refinement
///                    accounted for everything (unresolved_pessimism == 0);
///   P8 mcmm:         the corner-aware MCMM engine (merge/mcmm_session.h)
///                    at C == 1 over the case's decks reproduces the batch
///                    cover and merged bytes exactly; and over a
///                    case-seeded M x C corner family (gen/corner_gen.h:
///                    uniform per-corner value derates, which preserve
///                    exact-policy verdicts corner by corner) the combined
///                    mergeability graph equals the corner-0 reference
///                    graph edge for edge and reason for reason — skeleton
///                    sharing and value-only corner checks change no
///                    verdict — and each corner's merged decks are
///                    byte-identical to an independent flat merge of that
///                    corner's decks.
CheckResult check_case(const FuzzCase& c, const FuzzOptions& options);

/// Delta-debugging minimizer: greedily drop whole modes, ddmin each mode's
/// constraint lines, then shrink the design — re-running check_case at
/// every step and keeping only changes that preserve a violation of
/// `property`. Returns the smallest violating case found.
FuzzCase minimize_case(const FuzzCase& c, const FuzzOptions& options,
                       const std::string& property, size_t* runs = nullptr);

/// The full loop: iterate, check, minimize, collect (and write the corpus
/// when options.corpus_dir is set). Exports fuzz/* counters into the
/// mm.stats/1 snapshot.
FuzzReport run_fuzz(const FuzzOptions& options);

/// Names for DebugMutation in CLI flags and corpus manifests.
const char* mutation_name(merge::DebugMutation m);
bool parse_mutation(const std::string& name, merge::DebugMutation* out);

}  // namespace mm::fuzz
