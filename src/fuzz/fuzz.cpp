#include "fuzz/fuzz.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "fuzz/corpus.h"
#include "gen/corner_gen.h"
#include "merge/mcmm_session.h"
#include "merge/mergeability.h"
#include "merge/qor.h"
#include "obs/journal.h"
#include "merge/merger.h"
#include "merge/session.h"
#include "merge/sharded_session.h"
#include "netlist/design.h"
#include "obs/obs.h"
#include "sdc/parser.h"
#include "sdc/writer.h"
#include "timing/graph.h"
#include "util/error.h"
#include "util/logger.h"
#include "util/timer.h"

namespace mm::fuzz {

using merge::DebugMutation;
using util::Rng;

const char* mutation_name(DebugMutation m) {
  switch (m) {
    case DebugMutation::kNone: return "none";
    case DebugMutation::kFalsifyMcp: return "falsify-mcp";
    case DebugMutation::kDropExceptions: return "drop-exceptions";
    case DebugMutation::kShuffleInterned: return "shuffle-interned";
  }
  return "none";
}

bool parse_mutation(const std::string& name, DebugMutation* out) {
  for (DebugMutation m : {DebugMutation::kNone, DebugMutation::kFalsifyMcp,
                          DebugMutation::kDropExceptions,
                          DebugMutation::kShuffleInterned}) {
    if (name == mutation_name(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

// --- case generation --------------------------------------------------------

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Format a double the way the generators do (default ostream precision),
/// so perturbed lines look like generated ones.
std::string format_value(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string mutate_sdc_text(const std::string& text, Rng& rng) {
  std::vector<std::string> lines = split_lines(text);
  const size_t ops = 1 + rng.below(3);
  for (size_t op = 0; op < ops && !lines.empty(); ++op) {
    switch (rng.below(4)) {
      case 0:  // drop a constraint line
        lines.erase(lines.begin() + static_cast<long>(rng.below(lines.size())));
        break;
      case 1: {  // duplicate a line at a random position
        const std::string copy = lines[rng.below(lines.size())];
        lines.insert(lines.begin() + static_cast<long>(rng.below(lines.size() + 1)),
                     copy);
        break;
      }
      case 2: {  // reorder: swap two lines (SDC is last-entry-wins)
        std::swap(lines[rng.below(lines.size())],
                  lines[rng.below(lines.size())]);
        break;
      }
      default: {  // perturb one numeric token of one line
        std::string& line = lines[rng.below(lines.size())];
        std::istringstream is(line);
        std::vector<std::string> tokens;
        std::string tok;
        while (is >> tok) tokens.push_back(tok);
        std::vector<size_t> numeric;
        for (size_t t = 0; t < tokens.size(); ++t) {
          char* end = nullptr;
          std::strtod(tokens[t].c_str(), &end);
          if (end != tokens[t].c_str() && *end == '\0') numeric.push_back(t);
        }
        if (!numeric.empty()) {
          const size_t t = numeric[rng.below(numeric.size())];
          const double scales[] = {0.5, 0.9, 1.1, 2.0};
          const double v = std::strtod(tokens[t].c_str(), nullptr);
          tokens[t] = format_value(v * rng.pick(scales));
          std::string rebuilt;
          for (size_t k = 0; k < tokens.size(); ++k) {
            if (k) rebuilt += ' ';
            rebuilt += tokens[k];
          }
          line = rebuilt;
        }
        break;
      }
    }
  }
  return join_lines(lines);
}

FuzzCase generate_case(const FuzzOptions& options, uint64_t case_seed) {
  FuzzCase c;
  c.case_seed = case_seed;
  Rng rng(case_seed);

  gen::DesignParams dp;
  dp.name = "fuzz";
  dp.num_regs =
      30 + rng.below(options.max_regs > 30 ? options.max_regs - 30 : 1);
  dp.num_domains = 2 + rng.below(3);
  dp.num_data_ports = 3 + rng.below(4);
  dp.comb_per_reg = 1 + rng.below(3);
  dp.fanin_span = 4 + rng.below(8);
  dp.scan = rng.chance(70);
  dp.clock_gates = rng.chance(70);
  dp.seed = rng.next();
  c.design = dp;

  gen::ModeFamilyParams mp;
  mp.num_modes =
      2 + rng.below(options.max_modes >= 3 ? options.max_modes - 1 : 1);
  mp.target_groups = 1 + rng.below(mp.num_modes);
  const double periods[] = {4.0, 8.0, 10.0, 16.0};
  mp.base_period = rng.pick(periods);
  mp.group_mcps = rng.below(4);
  mp.mode_fps = rng.below(5);
  mp.io_delay_fraction = 0.1 * static_cast<double>(1 + rng.below(4));
  mp.group_conflict_step = rng.chance(70) ? 0.5 : 0.0;
  mp.seed = rng.next();
  // The widened space (see gen/mode_gen.h).
  mp.gen_clocks = rng.below(3);
  mp.min_max_delays = rng.below(3);
  mp.disabled_arcs = rng.below(3);
  mp.randomize_case = rng.chance(40);
  mp.clock_group_style = rng.below(4);

  for (const gen::GeneratedMode& gm : gen::generate_mode_family(dp, mp)) {
    c.mode_names.push_back(gm.name);
    std::string text = gm.sdc_text;
    if (options.mutate_sdc && rng.chance(60)) {
      text = mutate_sdc_text(text, rng);
    }
    c.mode_sdc.push_back(std::move(text));
  }
  return c;
}

// --- the oracle -------------------------------------------------------------

namespace {

merge::MergeOptions baseline_options(const FuzzOptions& options) {
  merge::MergeOptions base;
  base.num_threads = options.threads;
  base.use_batched_sta = options.use_batched_sta;
  base.debug_mutation = options.inject;
  return base;
}

/// The flipped configuration for P2: every must-agree execution path takes
/// its other branch at once (string keys, cold extraction, one thread).
/// Validation is skipped — P2 compares merge *outputs*, P1 owns validation.
merge::MergeOptions flipped_options(const FuzzOptions& options) {
  merge::MergeOptions alt = baseline_options(options);
  alt.use_interned_keys = false;
  alt.use_relationship_cache = false;
  alt.num_threads = 1;
  alt.validate = false;
  return alt;
}

std::string clique_to_string(const std::vector<size_t>& clique) {
  std::string s = "{";
  for (size_t k = 0; k < clique.size(); ++k) {
    if (k) s += ",";
    s += std::to_string(clique[k]);
  }
  return s + "}";
}

/// P1: the paper-§2 equivalence oracle over every clique's validation
/// report.
void check_equiv_property(const merge::MergedModeSet& out,
                          std::vector<Violation>& violations) {
  for (size_t i = 0; i < out.merged.size(); ++i) {
    const merge::ValidatedMergeResult& m = out.merged[i];
    const merge::EquivalenceReport& eq = m.equivalence;
    std::string where = "clique " + std::to_string(i) + " " +
                        clique_to_string(out.cliques[i]);
    if (eq.optimism_violations > 0) {
      violations.push_back(
          {"equivalence",
           where + ": " + std::to_string(eq.optimism_violations) +
               " optimism violation(s)" +
               (eq.examples.empty() ? "" : "; " + eq.examples.front())});
    } else if (eq.pessimism_keys > 0 &&
               m.merge.stats.unresolved_pessimism == 0) {
      violations.push_back(
          {"equivalence",
           where + ": " + std::to_string(eq.pessimism_keys) +
               " unaccounted pessimism key(s)" +
               (eq.examples.empty() ? "" : "; " + eq.examples.front())});
    }
  }
}

/// P2: byte-parity between the baseline and flipped configurations. On a
/// mismatch, re-runs with each flag flipped alone to attribute the
/// divergence.
void check_parity_property(const timing::TimingGraph& graph,
                           const std::vector<const sdc::Sdc*>& ptrs,
                           const FuzzOptions& options,
                           const merge::MergedModeSet& base_out,
                           std::vector<Violation>& violations) {
  const merge::MergedModeSet alt =
      merge::merge_mode_set(graph, ptrs, flipped_options(options));

  std::string mismatch;
  if (alt.cliques != base_out.cliques) {
    mismatch = "clique cover differs";
  } else {
    for (size_t i = 0; i < base_out.merged.size() && mismatch.empty(); ++i) {
      if (sdc::write_sdc(*base_out.merged[i].merge.merged) !=
          sdc::write_sdc(*alt.merged[i].merge.merged)) {
        mismatch = "merged SDC bytes differ for clique " + std::to_string(i);
      }
    }
  }
  if (mismatch.empty()) return;

  // Attribute: flip one flag at a time against the baseline.
  std::string blame;
  const char* flag_names[] = {"use_interned_keys", "use_relationship_cache",
                              "num_threads"};
  for (int f = 0; f < 3; ++f) {
    merge::MergeOptions one = baseline_options(options);
    one.validate = false;
    if (f == 0) one.use_interned_keys = false;
    if (f == 1) one.use_relationship_cache = false;
    if (f == 2) one.num_threads = 1;
    const merge::MergedModeSet run = merge::merge_mode_set(graph, ptrs, one);
    bool differs = run.cliques != base_out.cliques;
    for (size_t i = 0; !differs && i < base_out.merged.size(); ++i) {
      differs = sdc::write_sdc(*base_out.merged[i].merge.merged) !=
                sdc::write_sdc(*run.merged[i].merge.merged);
    }
    if (differs) {
      if (!blame.empty()) blame += ", ";
      blame += flag_names[f];
    }
  }
  violations.push_back(
      {"parity", mismatch + (blame.empty() ? " (cross-term only)"
                                           : " (flags: " + blame + ")")});
}

/// The SDC text as a sorted line multiset. Refinement derives exceptions in
/// analysis order rather than source order, so a re-merge can emit the same
/// constraints with two lines swapped; the fixpoint property is about
/// content, not line order, and a multiset compare still catches dropped,
/// duplicated, or altered constraints.
std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// P3: the merge is a fixpoint — re-merging a superset mode with itself
/// reproduces its constraints.
void check_idempotence_property(const timing::TimingGraph& graph,
                                const FuzzOptions& options,
                                const merge::MergedModeSet& base_out,
                                std::vector<Violation>& violations) {
  merge::MergeOptions re = baseline_options(options);
  re.validate = false;
  const size_t limit =
      std::min(options.idempotence_cliques, base_out.merged.size());
  for (size_t i = 0; i < limit; ++i) {
    const sdc::Sdc& superset = *base_out.merged[i].merge.merged;
    const merge::MergedModeSet again =
        merge::merge_mode_set(graph, {&superset, &superset}, re);
    if (again.cliques.size() != 1 || again.cliques[0].size() != 2) {
      violations.push_back(
          {"idempotence", "clique " + std::to_string(i) +
                              ": superset mode is not mergeable with itself"});
      continue;
    }
    if (sorted_lines(sdc::write_sdc(*again.merged[0].merge.merged)) !=
        sorted_lines(sdc::write_sdc(superset))) {
      violations.push_back(
          {"idempotence",
           "clique " + std::to_string(i) +
               ": merge(S, S) produced different constraints than S"});
    }
  }
}

/// P4: cover validity + maximality, with every edge re-derived through the
/// reference Sdc-pair mergeability path (so an interned/cached verdict that
/// diverges from the reference also surfaces here).
void check_cover_property(const std::vector<const sdc::Sdc*>& ptrs,
                          const FuzzOptions& options,
                          const merge::MergedModeSet& out,
                          std::vector<Violation>& violations) {
  const size_t n = ptrs.size();
  merge::MergeOptions base = baseline_options(options);
  std::vector<uint8_t> edge(n * n, 0);
  for (size_t i = 0; i < n; ++i) {
    edge[i * n + i] = 1;
    for (size_t j = i + 1; j < n; ++j) {
      const merge::PairVerdict v = merge::check_mergeable(*ptrs[i], *ptrs[j], base);
      edge[i * n + j] = edge[j * n + i] = v.mergeable ? 1 : 0;
    }
  }

  // Partition: every mode in exactly one clique.
  std::vector<size_t> seen(n, 0);
  for (const std::vector<size_t>& clique : out.cliques) {
    for (size_t v : clique) {
      if (v >= n || seen[v]++) {
        violations.push_back({"cover", "cover is not a partition of the modes"});
        return;
      }
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (!seen[v]) {
      violations.push_back(
          {"cover", "mode " + std::to_string(v) + " missing from the cover"});
      return;
    }
  }

  // Validity: every in-clique pair is mergeable.
  for (size_t ci = 0; ci < out.cliques.size(); ++ci) {
    const std::vector<size_t>& clique = out.cliques[ci];
    for (size_t a = 0; a < clique.size(); ++a) {
      for (size_t b = a + 1; b < clique.size(); ++b) {
        if (!edge[clique[a] * n + clique[b]]) {
          violations.push_back(
              {"cover", "unmergeable pair (" + std::to_string(clique[a]) +
                            "," + std::to_string(clique[b]) +
                            ") inside clique " + std::to_string(ci)});
          return;
        }
      }
    }
  }

  // Maximality / monotonicity: every mergeable pair either shares a clique
  // or each endpoint conflicts with the other's clique — concretely, a
  // mode in a later clique must conflict with at least one member of every
  // earlier clique, else the greedy cover left a merge on the table.
  for (size_t earlier = 0; earlier < out.cliques.size(); ++earlier) {
    for (size_t later = earlier + 1; later < out.cliques.size(); ++later) {
      for (size_t v : out.cliques[later]) {
        bool conflicts = false;
        for (size_t u : out.cliques[earlier]) {
          if (!edge[u * n + v]) {
            conflicts = true;
            break;
          }
        }
        if (!conflicts) {
          violations.push_back(
              {"cover", "mode " + std::to_string(v) +
                            " is mergeable with every member of earlier clique " +
                            std::to_string(earlier) + " but was not merged"});
          return;
        }
      }
    }
  }
}

/// Count-valued MergeStats fields (everything but the wall-clock seconds),
/// for P5's "stats modulo timing" comparison.
std::vector<size_t> stat_counts(const merge::MergeStats& s) {
  return {s.clocks_union,       s.clocks_deduped,
          s.clocks_renamed,     s.clock_constraints_merged,
          s.clock_constraints_dropped, s.port_delays_union,
          s.case_kept,          s.case_dropped,
          s.disables_kept,      s.disables_dropped,
          s.drive_load_kept,    s.drive_load_dropped,
          s.exclusivity_constraints,   s.exceptions_common,
          s.exceptions_uniquified,     s.exceptions_dropped,
          s.exceptions_kept_pessimistic, s.inferred_disables,
          s.clock_stops_added,  s.data_clock_fps_added,
          s.pass0_pair_fixed,   s.pass1_keys,
          s.pass1_mismatch_fixed, s.pass1_ambiguous,
          s.pass2_keys,         s.pass2_mismatch_fixed,
          s.pass2_ambiguous,    s.pass3_pairs,
          s.pass3_paths_enumerated, s.pass3_fps_added,
          s.unresolved_pessimism};
}

/// P5: incremental parity. Drive a MergeSession through a case-seeded
/// random delta sequence (adds, removals, updates, interleaved commits)
/// drawing decks from the case's mode pool, then compare the final commit
/// against a from-scratch batch merge of the session's live modes: same
/// clique cover, same mergeability edges and reason strings, same merged
/// SDC bytes, same count-valued stats. Validation is skipped — P5 compares
/// merge *outputs*; P1 owns validation.
void check_incremental_property(const timing::TimingGraph& graph,
                                const std::vector<const sdc::Sdc*>& ptrs,
                                const FuzzCase& c, const FuzzOptions& options,
                                std::vector<Violation>& violations) {
  merge::MergeOptions base = baseline_options(options);
  base.validate = false;

  merge::MergeSession session(graph, base);
  std::vector<merge::MergeSession::ModeId> live;
  Rng rng(Rng::mix(c.case_seed, 0x5e5510));
  size_t serial = 0;
  auto deck = [&]() { return ptrs[rng.below(ptrs.size())]; };
  auto add = [&]() {
    live.push_back(session.add_mode("s" + std::to_string(serial++), deck()));
  };

  add();
  const size_t ops = 4 + rng.below(2 * ptrs.size() + 4);
  for (size_t op = 0; op < ops; ++op) {
    switch (rng.below(5)) {
      case 0:
      case 1:
        add();
        break;
      case 2:
        if (!live.empty()) {
          const size_t k = rng.below(live.size());
          session.remove_mode(live[k]);
          live.erase(live.begin() + static_cast<long>(k));
        }
        break;
      case 3:
        if (!live.empty()) {
          session.update_mode(live[rng.below(live.size())], deck());
        }
        break;
      default:
        session.commit();
        break;
    }
  }
  if (live.empty()) add();
  const merge::MergeSession::CommitResult& r = session.commit();

  const std::vector<const sdc::Sdc*> final_live = session.live_modes();
  const merge::MergedModeSet scratch =
      merge::merge_mode_set(graph, final_live, base);

  const std::string after =
      " differs from batch rebuild after " + std::to_string(ops) +
      " delta op(s) over " + std::to_string(final_live.size()) + " live modes";
  if (r.cliques != scratch.cliques) {
    violations.push_back({"incremental", "session clique cover" + after});
    return;
  }
  for (size_t i = 0; i < r.merged.size(); ++i) {
    if (sdc::write_sdc(*r.merged[i]->merge.merged) !=
        sdc::write_sdc(*scratch.merged[i].merge.merged)) {
      violations.push_back(
          {"incremental",
           "merged SDC bytes for clique " + std::to_string(i) + after});
      return;
    }
    if (stat_counts(r.merged[i]->merge.stats) !=
        stat_counts(scratch.merged[i].merge.stats)) {
      violations.push_back(
          {"incremental",
           "count-valued stats for clique " + std::to_string(i) + after});
      return;
    }
  }

  merge::MergeContext ref_ctx(base);
  const merge::MergeabilityGraph ref(final_live, ref_ctx);
  for (size_t i = 0; i < ref.num_modes(); ++i) {
    for (size_t j = 0; j < ref.num_modes(); ++j) {
      if (session.graph().edge(i, j) != ref.edge(i, j) ||
          session.graph().reason(i, j) != ref.reason(i, j)) {
        violations.push_back(
            {"incremental", "mergeability verdict (" + std::to_string(i) +
                                "," + std::to_string(j) + ")" + after});
        return;
      }
    }
  }
}

/// P6: sharded parity. For K in {2, 4, 8}, a ShardedMergeSession over the
/// case's modes — block partitioning, per-shard checks, boundary stitch —
/// must end byte-identical to the unsharded baseline: same mergeability
/// edges and reason strings, same clique cover, same merged SDC bytes.
/// Stats are NOT compared (per-shard prescreen counters legitimately
/// differ). Validation is skipped — P6 compares merge outputs; P1 owns
/// validation.
void check_sharded_property(const timing::TimingGraph& graph,
                            const std::vector<const sdc::Sdc*>& ptrs,
                            const FuzzOptions& options,
                            const merge::MergedModeSet& base_out,
                            std::vector<Violation>& violations) {
  merge::MergeOptions base = baseline_options(options);
  base.validate = false;
  merge::MergeContext ref_ctx(base);
  const merge::MergeabilityGraph ref(ptrs, ref_ctx);

  for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    merge::MergeOptions opts = base;
    opts.num_shards = shards;
    merge::ShardedMergeSession session(graph, opts);
    for (size_t i = 0; i < ptrs.size(); ++i) {
      session.add_mode("m" + std::to_string(i), ptrs[i]);
    }
    const merge::MergeSession::CommitResult& r = session.commit();
    const std::string where = " (sharded K=" + std::to_string(shards) + ")";

    if (r.cliques != base_out.cliques) {
      violations.push_back({"sharded", "clique cover differs" + where});
      return;
    }
    for (size_t i = 0; i < r.merged.size(); ++i) {
      if (sdc::write_sdc(*r.merged[i]->merge.merged) !=
          sdc::write_sdc(*base_out.merged[i].merge.merged)) {
        violations.push_back(
            {"sharded",
             "merged SDC bytes for clique " + std::to_string(i) + where});
        return;
      }
    }
    for (size_t i = 0; i < ref.num_modes(); ++i) {
      for (size_t j = 0; j < ref.num_modes(); ++j) {
        if (session.graph().edge(i, j) != ref.edge(i, j) ||
            session.graph().reason(i, j) != ref.reason(i, j)) {
          violations.push_back(
              {"sharded", "mergeability verdict (" + std::to_string(i) + "," +
                              std::to_string(j) + ")" + where});
          return;
        }
      }
    }
  }
}

/// P7: the merge-policy oracle. Deliberately ignores the case's (mutated)
/// mode decks — text mutation can legitimately loosen merged STA values
/// even under the exact policy (dropping a one-sided drive or latency is
/// relationship-equivalent but value-optimistic) — and instead derives a
/// self-contained near-miss family from the case seed on the case's
/// design: one functional mode per group, carrier gaps alternating
/// W -/+ eps around the window boundary, every windowed field present in
/// every mode (gen/mode_gen.h). Asserts:
///   - boundary decisions on both sides: exact -> G cliques, windowed ->
///     exactly ceil(G/2), and each adjacent pair merges iff its gap is
///     the inside one;
///   - verdict provenance: every windowed acceptance records a window
///     field and fits its budget;
///   - the merge/qor.h oracle: merged decks are NEVER optimistic vs the
///     worst individual member (zero loosened slacks, zero dropped
///     endpoints) — unconditional;
///   - bounded pessimism: when refinement accounted for everything
///     (unresolved_pessimism == 0 on every clique), max QoR pessimism is
///     within MergePolicy::pessimism_bound().
void check_policy_property(const timing::TimingGraph& graph,
                           const netlist::Design& design, const FuzzCase& c,
                           const FuzzOptions& options,
                           std::vector<Violation>& violations) {
  Rng rng(Rng::mix(c.case_seed, 0x707));
  const size_t groups = 3 + rng.below(3);
  const double windows[] = {0.1, 0.2, 0.3, 0.4};
  const double window = rng.pick(windows);

  gen::ModeFamilyParams mp;
  mp.num_modes = groups;
  mp.target_groups = groups;  // one functional mode per group
  const double periods[] = {4.0, 8.0, 10.0, 16.0};
  mp.base_period = rng.pick(periods);
  mp.group_mcps = 1 + rng.below(3);  // >= 1 so kFalsifyMcp has a target
  mp.mode_fps = 0;  // droppable FPs would add non-window pessimism
  mp.seed = rng.next();
  mp.near_miss_window = window;
  mp.near_miss_epsilon = window / 4.0;

  // The family text is generator output, never mutated: a parse failure
  // here is a generator bug and propagates as such.
  std::vector<sdc::Sdc> modes;
  std::vector<const sdc::Sdc*> ptrs;
  for (const gen::GeneratedMode& gm :
       gen::generate_mode_family(c.design, mp)) {
    modes.push_back(sdc::parse_sdc(gm.sdc_text, design));
  }
  for (const sdc::Sdc& m : modes) ptrs.push_back(&m);

  // Exact: every carrier gap is out of tolerance -> one clique per mode.
  merge::MergeOptions exact = baseline_options(options);
  exact.validate = false;
  const merge::MergedModeSet exact_out =
      merge::merge_mode_set(graph, ptrs, exact);
  if (exact_out.cliques.size() != groups) {
    violations.push_back(
        {"policy", "near-miss family: exact policy found " +
                       std::to_string(exact_out.cliques.size()) +
                       " cliques, expected " + std::to_string(groups)});
    return;
  }

  // Windowed at the family's window: even->odd gaps (W - eps) merge,
  // odd->even gaps (W + eps) don't, so the cover is exactly ceil(G/2).
  merge::MergeOptions win = baseline_options(options);
  win.validate = false;
  win.policy = merge::MergePolicy::uniform(window);
  const merge::MergedModeSet win_out = merge::merge_mode_set(graph, ptrs, win);
  const size_t expect_cliques = (groups + 1) / 2;
  if (win_out.cliques.size() != expect_cliques) {
    violations.push_back(
        {"policy", "near-miss family: window " + format_value(window) +
                       " found " + std::to_string(win_out.cliques.size()) +
                       " cliques, expected " +
                       std::to_string(expect_cliques)});
    return;
  }

  // Both sides of the boundary, with provenance, through the reference
  // Sdc-pair path.
  for (size_t i = 0; i + 1 < ptrs.size(); ++i) {
    const merge::PairVerdict v =
        merge::check_mergeable(*ptrs[i], *ptrs[i + 1], win);
    const bool expect_merge = (i % 2 == 0);
    const std::string pair =
        "pair (" + std::to_string(i) + "," + std::to_string(i + 1) + ")";
    if (v.mergeable != expect_merge) {
      violations.push_back(
          {"policy", pair + ": gap " +
                         format_value(window + (expect_merge ? -1.0 : 1.0) *
                                                   mp.near_miss_epsilon) +
                         " vs window " + format_value(window) + " decided " +
                         (v.mergeable ? "mergeable" : "conflict") + ": " +
                         v.reason});
      return;
    }
    if (v.policy != "windowed") {
      violations.push_back(
          {"policy", pair + ": verdict policy '" + v.policy +
                         "', expected 'windowed'"});
      return;
    }
    if (v.mergeable &&
        (v.window_field.empty() ||
         v.window_used > v.window_budget + 1e-12)) {
      violations.push_back(
          {"policy", pair + ": window acceptance lacks in-budget provenance"
                            " (field '" +
                         v.window_field + "', used " +
                         format_value(v.window_used) + " of " +
                         format_value(v.window_budget) + ")"});
      return;
    }
  }

  // The QoR oracle: never optimistic, unconditionally.
  const merge::QoRReport qor = merge::qor_report(graph, ptrs, win_out, win);
  if (!qor.never_optimistic()) {
    violations.push_back(
        {"policy",
         "windowed merge is optimistic: " +
             std::to_string(qor.optimism_violations) +
             " loosened endpoint(s) (max " + format_value(qor.max_optimism) +
             "), " + std::to_string(qor.missing_endpoints) +
             " missing endpoint(s)"});
    return;
  }

  // Bounded pessimism — only claimable when refinement accounted for every
  // pessimism key it introduced.
  bool accounted = true;
  for (const merge::ValidatedMergeResult& m : win_out.merged) {
    accounted = accounted && m.merge.stats.unresolved_pessimism == 0;
  }
  const double bound = win.policy.pessimism_bound();
  if (accounted && qor.max_pessimism > bound + qor.slack_eps) {
    violations.push_back(
        {"policy", "windowed pessimism " + format_value(qor.max_pessimism) +
                       " exceeds policy bound " + format_value(bound)});
  }
}

/// P8: the corner-aware MCMM engine agrees with the flat engine everywhere
/// the flat engine is defined. Two halves:
///
///   C == 1 identity   a single-corner McmmSession over the case's (possibly
///                     mutated) decks must reproduce the batch cover and
///                     merged bytes exactly — the corner machinery adds zero
///                     byte-level difference.
///   matrix parity     a case-seeded unmutated corner family (uniform
///                     multiplicative derates preserve exact-policy verdicts
///                     corner by corner, see gen/corner_gen.h) is merged
///                     corner-aware; the combined mergeability graph must
///                     equal the corner-0 reference graph edge for edge and
///                     reason for reason (skeleton sharing + value-only
///                     screens change no verdict), and every corner's merged
///                     decks must be byte-identical to an independent flat
///                     merge of that corner's decks.
void check_mcmm_property(const timing::TimingGraph& graph,
                         const netlist::Design& design,
                         const std::vector<const sdc::Sdc*>& ptrs,
                         const merge::MergedModeSet& base_out,
                         const FuzzCase& c, const FuzzOptions& options,
                         std::vector<Violation>& violations) {
  merge::MergeOptions base = baseline_options(options);
  base.validate = false;  // validation does not affect bytes or cover

  {
    merge::McmmSession session(graph, merge::CornerSet(), base);
    for (size_t m = 0; m < ptrs.size(); ++m) {
      session.add_mode(c.mode_names[m], {ptrs[m]});
    }
    const merge::McmmSession::CommitResult& r = session.commit();
    if (r.cliques != base_out.cliques) {
      violations.push_back(
          {"mcmm", "C=1 session clique cover differs from batch merge"});
      return;
    }
    for (size_t k = 0; k < r.cliques.size(); ++k) {
      if (sdc::write_sdc(*r.merged[0][k]->merge.merged) !=
          sdc::write_sdc(*base_out.merged[k].merge.merged)) {
        violations.push_back(
            {"mcmm", "C=1 merged SDC bytes differ from batch for clique " +
                         std::to_string(k)});
        return;
      }
    }
  }

  // The matrix half runs on generator output, never mutated text: the
  // verdict-preservation argument needs values that are either identical
  // (in-group) or separated by a planted conflict step (cross-group), both
  // of which survive uniform scaling.
  Rng rng(Rng::mix(c.case_seed, 0x8cc));
  gen::ModeFamilyParams mp;
  mp.num_modes = 2 + rng.below(3);
  mp.target_groups = 1 + rng.below(mp.num_modes);
  const double periods[] = {4.0, 8.0, 10.0, 16.0};
  mp.base_period = rng.pick(periods);
  mp.group_mcps = rng.below(3);
  mp.mode_fps = rng.below(3);
  mp.seed = rng.next();

  gen::CornerFamilyParams cp;
  const size_t corner_cap = options.max_corners < 2 ? 2 : options.max_corners;
  cp.num_corners = 2 + rng.below(corner_cap - 1);
  cp.clock_derate_step = 0.05 * static_cast<double>(1 + rng.below(3));
  cp.drive_derate_step = 0.04 * static_cast<double>(1 + rng.below(3));
  cp.load_derate_step = 0.10;
  if (rng.chance(30)) {
    // Break one corner's skeleton: the full-extraction fallback must still
    // produce flat-identical verdicts and bytes.
    cp.structural_break_corner = 1 + rng.below(cp.num_corners - 1);
  }
  const gen::CornerFamily fam = gen::generate_corner_family(c.design, mp, cp);
  const size_t num_modes = fam.modes.size();
  const size_t num_corners = fam.corners.size();

  // Corner-major parse of the matrix. Corner transformations only rewrite
  // numeric values of parseable generator output, so a parse failure here is
  // a corner_gen bug and propagates as such.
  std::vector<std::vector<sdc::Sdc>> matrix(num_corners);
  for (size_t cc = 0; cc < num_corners; ++cc) {
    for (size_t m = 0; m < num_modes; ++m) {
      matrix[cc].push_back(sdc::parse_sdc(fam.sdc_texts[m][cc], design));
    }
  }

  std::vector<std::string> corner_names;
  for (const gen::CornerSpec& spec : fam.corners) {
    corner_names.push_back(spec.name);
  }
  merge::McmmSession session(graph, merge::CornerSet(corner_names), base);
  for (size_t m = 0; m < num_modes; ++m) {
    std::vector<const sdc::Sdc*> decks;
    for (size_t cc = 0; cc < num_corners; ++cc) decks.push_back(&matrix[cc][m]);
    session.add_mode(fam.modes[m].name, decks);
  }
  const merge::McmmSession::CommitResult& r = session.commit();

  // Verdict identity: every corner agrees with corner 0 by construction, so
  // the combined graph must equal the corner-0 reference graph (fresh
  // context, reference Sdc-pair path).
  std::vector<const sdc::Sdc*> c0_ptrs;
  for (const sdc::Sdc& m : matrix[0]) c0_ptrs.push_back(&m);
  merge::MergeContext ref_ctx(base);
  const merge::MergeabilityGraph ref(c0_ptrs, ref_ctx);
  for (size_t i = 0; i < num_modes; ++i) {
    for (size_t j = i + 1; j < num_modes; ++j) {
      if (session.graph().edge(i, j) != ref.edge(i, j) ||
          session.graph().reason(i, j) != ref.reason(i, j)) {
        violations.push_back(
            {"mcmm", "combined verdict for pair (" + std::to_string(i) + "," +
                         std::to_string(j) +
                         ") differs from the corner-0 reference: '" +
                         session.graph().reason(i, j) + "' vs '" +
                         ref.reason(i, j) + "'"});
        return;
      }
    }
  }

  // Per-corner byte parity to C independent flat merges.
  for (size_t cc = 0; cc < num_corners; ++cc) {
    std::vector<const sdc::Sdc*> corner_ptrs;
    for (const sdc::Sdc& m : matrix[cc]) corner_ptrs.push_back(&m);
    const merge::MergedModeSet flat =
        merge::merge_mode_set(graph, corner_ptrs, base);
    if (flat.cliques != r.cliques) {
      violations.push_back(
          {"mcmm", "corner " + fam.corners[cc].name +
                       ": flat clique cover differs from the shared MCMM"
                       " cover"});
      return;
    }
    for (size_t k = 0; k < r.cliques.size(); ++k) {
      if (sdc::write_sdc(*r.merged[cc][k]->merge.merged) !=
          sdc::write_sdc(*flat.merged[k].merge.merged)) {
        violations.push_back(
            {"mcmm", "corner " + fam.corners[cc].name +
                         ": merged SDC bytes differ from the flat merge for"
                         " clique " +
                         std::to_string(k)});
        return;
      }
    }
  }
}

}  // namespace

CheckResult check_case(const FuzzCase& c, const FuzzOptions& options) {
  MM_SPAN("fuzz/check_case");
  CheckResult result;

  const netlist::Library lib = netlist::Library::builtin();
  const netlist::Design design = gen::generate_design(lib, c.design);
  const timing::TimingGraph graph(design);

  std::vector<sdc::Sdc> modes;
  modes.reserve(c.mode_sdc.size());
  try {
    for (const std::string& text : c.mode_sdc) {
      modes.push_back(sdc::parse_sdc(text, design));
    }
  } catch (const Error& e) {
    result.parse_error = e.what();
    return result;  // rejected: the mutation stage broke the SDC
  }
  result.parsed = true;

  std::vector<const sdc::Sdc*> ptrs;
  for (const sdc::Sdc& m : modes) ptrs.push_back(&m);

  const merge::MergedModeSet out =
      merge::merge_mode_set(graph, ptrs, baseline_options(options));
  result.cliques = out.cliques.size();

  if (options.check_equiv) check_equiv_property(out, result.violations);
  if (options.check_cover)
    check_cover_property(ptrs, options, out, result.violations);
  if (options.check_parity)
    check_parity_property(graph, ptrs, options, out, result.violations);
  if (options.check_idempotence)
    check_idempotence_property(graph, options, out, result.violations);
  if (options.check_incremental)
    check_incremental_property(graph, ptrs, c, options, result.violations);
  if (options.check_sharded)
    check_sharded_property(graph, ptrs, options, out, result.violations);
  if (options.check_policy)
    check_policy_property(graph, design, c, options, result.violations);
  if (options.check_mcmm)
    check_mcmm_property(graph, design, ptrs, out, c, options,
                        result.violations);
  return result;
}

// --- the loop ---------------------------------------------------------------

FuzzReport run_fuzz(const FuzzOptions& options) {
  MM_SPAN("fuzz/run");
  Stopwatch timer;
  FuzzReport report;

  for (uint64_t iter = 0; iter < options.iters; ++iter) {
    const uint64_t case_seed = case_seed_for(options.seed, iter);
    const FuzzCase c = generate_case(options, case_seed);
    report.modes_generated += c.mode_sdc.size();

    const CheckResult res = check_case(c, options);
    ++report.iterations;
    MM_COUNT("fuzz/iterations", 1);
    if (!res.parsed) {
      ++report.rejected;
      MM_COUNT("fuzz/rejected", 1);
      continue;
    }
    report.cliques_checked += res.cliques;
    MM_COUNT("fuzz/cliques_checked", res.cliques);
    if (res.violations.empty()) continue;

    MM_COUNT("fuzz/violations", res.violations.size());
    Finding finding;
    finding.violation = res.violations.front();
    finding.inject = options.inject;
    MM_WARN("fuzz: case_seed=%llu violates %s: %s",
            static_cast<unsigned long long>(case_seed),
            finding.violation.property.c_str(),
            finding.violation.detail.c_str());
    finding.repro = options.minimize
                        ? minimize_case(c, options, finding.violation.property,
                                        &finding.minimize_runs)
                        : c;
    MM_COUNT("fuzz/minimize_runs", finding.minimize_runs);
    if (!options.corpus_dir.empty()) {
      const std::string dir =
          corpus_case_dir(options.corpus_dir, report.findings.size());
      write_corpus_case(dir, finding);
      // Ship the repro with its decision trail: replay the minimized case
      // once with the mm.journal/1 journal aimed into the corpus dir, so
      // triage starts from `mmreport explain` instead of a cold re-run.
      // Skipped when the caller already has a process journal open
      // (--journal-out), which is capturing the whole run anyway.
      if (!obs::Journal::enabled() &&
          obs::Journal::open(dir + "/journal.jsonl")) {
        check_case(finding.repro, options);
        obs::Journal::close();
      }
      MM_WARN("fuzz: minimized repro written to %s", dir.c_str());
    }
    report.findings.push_back(std::move(finding));
    if (report.findings.size() >= options.max_violations) break;
  }
  report.seconds = timer.elapsed_seconds();
  return report;
}

}  // namespace mm::fuzz
