#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace mm::fuzz {

namespace fs = std::filesystem;

std::string corpus_case_dir(const std::string& root, size_t index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "case_%03zu", index);
  return root + "/" + buf;
}

void write_corpus_case(const std::string& dir, const Finding& finding) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw Error("cannot create corpus dir: " + dir);

  const FuzzCase& c = finding.repro;
  std::ostringstream os;
  os << "schema mm.fuzzcase/1\n";
  os << "case_seed " << c.case_seed << "\n";
  os << "property " << finding.violation.property << "\n";
  os << "inject " << mutation_name(finding.inject) << "\n";
  os << "detail " << finding.violation.detail << "\n";
  os << "design.name " << c.design.name << "\n";
  os << "design.num_regs " << c.design.num_regs << "\n";
  os << "design.num_domains " << c.design.num_domains << "\n";
  os << "design.num_data_ports " << c.design.num_data_ports << "\n";
  os << "design.comb_per_reg " << c.design.comb_per_reg << "\n";
  os << "design.fanin_span " << c.design.fanin_span << "\n";
  os << "design.scan " << (c.design.scan ? 1 : 0) << "\n";
  os << "design.clock_gates " << (c.design.clock_gates ? 1 : 0) << "\n";
  os << "design.seed " << c.design.seed << "\n";
  for (size_t m = 0; m < c.mode_sdc.size(); ++m) {
    const std::string file = "mode_" + std::to_string(m) + ".sdc";
    os << "mode " << file << " "
       << (m < c.mode_names.size() ? c.mode_names[m] : file) << "\n";
    std::ofstream mf(dir + "/" + file);
    if (!mf) throw Error("cannot write corpus mode file in " + dir);
    mf << c.mode_sdc[m];
  }
  std::ofstream manifest(dir + "/manifest.txt");
  if (!manifest) throw Error("cannot write corpus manifest in " + dir);
  manifest << os.str();
}

Finding read_corpus_case(const std::string& dir) {
  std::ifstream in(dir + "/manifest.txt");
  if (!in) throw Error("cannot open corpus manifest: " + dir + "/manifest.txt");

  Finding f;
  FuzzCase& c = f.repro;
  std::string line;
  bool schema_ok = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "schema") {
      std::string v;
      is >> v;
      schema_ok = v == "mm.fuzzcase/1";
    } else if (key == "case_seed") {
      is >> c.case_seed;
    } else if (key == "property") {
      is >> f.violation.property;
    } else if (key == "inject") {
      std::string v;
      is >> v;
      if (!parse_mutation(v, &f.inject)) {
        throw Error("corpus manifest: unknown inject '" + v + "' in " + dir);
      }
    } else if (key == "detail") {
      std::getline(is >> std::ws, f.violation.detail);
    } else if (key == "design.name") {
      is >> c.design.name;
    } else if (key == "design.num_regs") {
      is >> c.design.num_regs;
    } else if (key == "design.num_domains") {
      is >> c.design.num_domains;
    } else if (key == "design.num_data_ports") {
      is >> c.design.num_data_ports;
    } else if (key == "design.comb_per_reg") {
      is >> c.design.comb_per_reg;
    } else if (key == "design.fanin_span") {
      is >> c.design.fanin_span;
    } else if (key == "design.scan") {
      int v = 0;
      is >> v;
      c.design.scan = v != 0;
    } else if (key == "design.clock_gates") {
      int v = 0;
      is >> v;
      c.design.clock_gates = v != 0;
    } else if (key == "design.seed") {
      is >> c.design.seed;
    } else if (key == "mode") {
      std::string file, name;
      is >> file >> name;
      std::ifstream mf(dir + "/" + file);
      if (!mf) throw Error("corpus mode file missing: " + dir + "/" + file);
      std::ostringstream text;
      text << mf.rdbuf();
      c.mode_sdc.push_back(text.str());
      c.mode_names.push_back(name.empty() ? file : name);
    } else {
      throw Error("corpus manifest: unknown key '" + key + "' in " + dir);
    }
  }
  if (!schema_ok) throw Error("corpus manifest: bad or missing schema in " + dir);
  if (c.mode_sdc.empty()) throw Error("corpus case has no modes: " + dir);
  return f;
}

std::vector<std::string> list_corpus(const std::string& root) {
  std::vector<std::string> dirs;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(root, ec)) {
    if (e.is_directory() && fs::exists(e.path() / "manifest.txt")) {
      dirs.push_back(e.path().string());
    }
  }
  if (ec) throw Error("cannot list corpus root: " + root);
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

ReplayResult replay_corpus_case(const std::string& dir, size_t threads) {
  ReplayResult r;
  r.dir = dir;
  const Finding f = read_corpus_case(dir);

  FuzzOptions opt;
  opt.threads = threads;
  opt.minimize = false;

  const CheckResult clean = check_case(f.repro, opt);
  if (!clean.parsed) {
    r.detail = "corpus case no longer parses: " + clean.parse_error;
    return r;
  }
  r.clean_ok = clean.violations.empty();
  if (!r.clean_ok) {
    r.detail = "clean replay violates " + clean.violations.front().property +
               ": " + clean.violations.front().detail;
    return r;
  }

  if (f.inject != merge::DebugMutation::kNone) {
    opt.inject = f.inject;
    const CheckResult bad = check_case(f.repro, opt);
    r.inject_caught = false;
    for (const Violation& v : bad.violations) {
      if (v.property == f.violation.property) r.inject_caught = true;
    }
    if (!r.inject_caught) {
      r.detail = "oracle no longer catches injected '" +
                 std::string(mutation_name(f.inject)) + "' on property " +
                 f.violation.property;
    }
  }
  return r;
}

}  // namespace mm::fuzz
