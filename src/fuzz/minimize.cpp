// Delta-debugging minimizer for fuzz findings: shrink the mode family,
// then each mode's constraint lines (classic ddmin chunk halving), then
// the design itself — keeping every change that preserves a violation of
// the target property. Unparsable candidates (a dropped create_clock whose
// name is still referenced, a shrunken design whose pins a mode still
// names) simply fail the predicate and are discarded, so the minimizer
// never needs SDC-aware editing.

#include <algorithm>
#include <sstream>

#include "fuzz/fuzz.h"
#include "obs/obs.h"
#include "util/logger.h"

namespace mm::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

class Minimizer {
 public:
  Minimizer(const FuzzOptions& options, std::string property)
      : options_(options), property_(std::move(property)) {
    // Only the violated property needs re-checking while shrinking; the
    // others just burn time.
    options_.check_equiv = property_ == "equivalence";
    options_.check_parity = property_ == "parity";
    options_.check_idempotence = property_ == "idempotence";
    options_.check_cover = property_ == "cover";
    options_.minimize = false;
    options_.corpus_dir.clear();
  }

  size_t runs() const { return runs_; }

  /// True if the candidate still violates the target property.
  bool violates(const FuzzCase& c) {
    ++runs_;
    const CheckResult res = check_case(c, options_);
    if (!res.parsed) return false;
    for (const Violation& v : res.violations) {
      if (v.property == property_) return true;
    }
    return false;
  }

  FuzzCase shrink(FuzzCase c) {
    shrink_modes(c);
    for (size_t m = 0; m < c.mode_sdc.size(); ++m) shrink_lines(c, m);
    // A second mode pass: line shrinking can make more modes droppable.
    shrink_modes(c);
    shrink_design(c);
    return c;
  }

 private:
  /// Greedily drop whole modes while the violation persists.
  void shrink_modes(FuzzCase& c) {
    bool progress = true;
    while (progress && c.mode_sdc.size() > 1) {
      progress = false;
      for (size_t i = 0; i < c.mode_sdc.size(); ++i) {
        FuzzCase candidate = c;
        candidate.mode_sdc.erase(candidate.mode_sdc.begin() +
                                 static_cast<long>(i));
        candidate.mode_names.erase(candidate.mode_names.begin() +
                                   static_cast<long>(i));
        if (violates(candidate)) {
          c = std::move(candidate);
          progress = true;
          break;
        }
      }
    }
  }

  /// ddmin over one mode's constraint lines: remove chunks, halving the
  /// chunk size until single lines have been tried.
  void shrink_lines(FuzzCase& c, size_t mode) {
    std::vector<std::string> lines = split_lines(c.mode_sdc[mode]);
    size_t chunk = lines.size() / 2;
    if (chunk == 0) chunk = 1;
    while (true) {
      bool progress = false;
      for (size_t start = 0; start < lines.size(); start += chunk) {
        const size_t end = std::min(start + chunk, lines.size());
        std::vector<std::string> candidate_lines;
        candidate_lines.insert(candidate_lines.end(), lines.begin(),
                               lines.begin() + static_cast<long>(start));
        candidate_lines.insert(candidate_lines.end(),
                               lines.begin() + static_cast<long>(end),
                               lines.end());
        FuzzCase candidate = c;
        candidate.mode_sdc[mode] = join_lines(candidate_lines);
        if (violates(candidate)) {
          lines = std::move(candidate_lines);
          c = std::move(candidate);
          progress = true;
          break;
        }
      }
      if (!progress) {
        if (chunk == 1) break;
        chunk = chunk / 2 > 0 ? chunk / 2 : 1;
      }
    }
  }

  /// Shrink the substrate: halve registers, drop domains and gates — the
  /// mode texts pin the design through port/pin names, so any shrink that
  /// breaks a reference fails the predicate and is discarded.
  void shrink_design(FuzzCase& c) {
    while (c.design.num_regs > 10) {
      FuzzCase candidate = c;
      candidate.design.num_regs = c.design.num_regs / 2;
      if (!violates(candidate)) break;
      c = std::move(candidate);
    }
    while (c.design.num_domains > 1) {
      FuzzCase candidate = c;
      candidate.design.num_domains = c.design.num_domains - 1;
      if (!violates(candidate)) break;
      c = std::move(candidate);
    }
    if (c.design.comb_per_reg > 1) {
      FuzzCase candidate = c;
      candidate.design.comb_per_reg = 1;
      if (violates(candidate)) c = std::move(candidate);
    }
  }

  FuzzOptions options_;
  std::string property_;
  size_t runs_ = 0;
};

}  // namespace

FuzzCase minimize_case(const FuzzCase& c, const FuzzOptions& options,
                       const std::string& property, size_t* runs) {
  MM_SPAN("fuzz/minimize");
  Minimizer mini(options, property);
  FuzzCase out = mini.shrink(c);
  if (runs != nullptr) *runs = mini.runs();
  size_t lines = 0;
  for (const std::string& text : out.mode_sdc) {
    lines += split_lines(text).size();
  }
  MM_INFO("fuzz: minimized to %zu mode(s), %zu constraint line(s) in %zu runs",
          out.mode_sdc.size(), lines, mini.runs());
  return out;
}

}  // namespace mm::fuzz
