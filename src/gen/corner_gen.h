#pragma once
// Corner-family generator: turns one generated mode family (gen/mode_gen.h)
// into an M x C MCMM deck matrix (docs/MCMM.md). A corner is a VALUE
// transformation of a mode's deck — derates on the clock network
// (latency / uncertainty / transition), on drive strengths (input
// transitions), and on pin loads — never a topology change, which is
// exactly the skeleton/delta split the MCMM engine exploits: every
// corner of a mode shares the mode's skeleton, so the engine pays M
// skeleton extractions plus M x C value fills.
//
// The transformations are uniform per corner (one multiplicative factor per
// value channel, applied to every mode), so under the exact policy a
// corner's pairwise verdicts are literally the flat verdicts of that
// corner's decks: equal values stay equal after identical scaling and
// conflicting gaps scale away from zero. Fuzz property P8 and
// tests/test_mcmm.cpp lean on this to assert per-corner byte parity
// between the corner-aware engine and C independent flat merges.
//
// Corner 0 is always the identity (the base family verbatim), so a C == 1
// matrix is the flat family and exercises the single-corner byte-identity
// contract. `structural_break_corner` deliberately violates the
// shared-skeleton assumption in one corner (an extra drive channel) to
// exercise the full-extraction fallback path.

#include <string>
#include <vector>

#include "gen/mode_gen.h"

namespace mm::gen {

/// One corner's value transformation. Scales apply to the first numeric
/// argument of the matching SDC commands; 1.0 everywhere is the identity.
struct CornerSpec {
  std::string name;
  /// set_clock_latency / set_clock_uncertainty / set_clock_transition.
  double clock_scale = 1.0;
  /// set_input_transition / set_drive (drive channels).
  double drive_scale = 1.0;
  /// set_load (load channels).
  double load_scale = 1.0;
  /// Append an extra drive channel (set_input_transition on di_1) — a
  /// topology change that breaks skeleton sharing for this corner. Assumes
  /// the base family does not drive di_1 (true for mode_gen families,
  /// whose only transition carrier is di_0).
  bool structural_break = false;
};

struct CornerFamilyParams {
  size_t num_corners = 1;
  /// Corner c's clock_scale is 1 + c * clock_derate_step (and likewise for
  /// the other channels), so corners are distinct but ordered — the shape
  /// of a slow/typ/fast derate ladder.
  double clock_derate_step = 0.05;
  double drive_derate_step = 0.08;
  double load_derate_step = 0.10;
  /// 1-based corner index to break structurally (0 = none; corner 0 can
  /// never break — it IS the skeleton).
  size_t structural_break_corner = 0;
  /// Corner names are "<name_prefix><index>".
  std::string name_prefix = "corner";
};

/// The derate ladder described by `params` (params.num_corners entries,
/// corner 0 the identity).
std::vector<CornerSpec> make_corner_specs(const CornerFamilyParams& params);

/// Apply one corner's transformation to a mode's SDC text: each line whose
/// command carries a derated value channel gets its first numeric argument
/// scaled (deterministic "%g"-style formatting); everything else passes
/// through byte-for-byte. The identity spec returns the input verbatim.
std::string apply_corner(const std::string& sdc_text, const CornerSpec& corner);

/// An M x C deck matrix: base modes plus per-corner transformed texts.
struct CornerFamily {
  std::vector<GeneratedMode> modes;  // the base (corner 0) family
  std::vector<CornerSpec> corners;
  /// sdc_texts[m][c] = mode m's deck in corner c; column 0 is
  /// modes[m].sdc_text verbatim.
  std::vector<std::vector<std::string>> sdc_texts;
};

CornerFamily generate_corner_family(const DesignParams& design,
                                    const ModeFamilyParams& modes,
                                    const CornerFamilyParams& corners);

}  // namespace mm::gen
