#pragma once
// Mode-family generator: emits per-mode SDC *text* (exercised through the
// real parser) for designs built by generate_design. This is the stand-in
// for the paper's industrial mode decks.
//
// A family is organized into `target_groups` planted mergeable groups:
// modes within a group are pairwise mergeable, modes across groups carry a
// deliberately conflicting constraint value (clock uncertainty + input
// transition), so the mergeability graph is block-diagonal and the clique
// cover yields exactly `target_groups` superset modes — letting the Table-5
// benchmark reproduce the paper's exact mode-reduction rows.
//
// Mode kinds cycle within a group:
//   functional v : per-domain clocks on clk_d, test_mode=0, scan_en=0,
//                  one domain power-gated per variant (en_d=0), I/O delays,
//                  group-common MCPs, per-mode false paths;
//   scan shift   : single TCLK on tclk, test_mode=1, scan_en=1, false paths
//                  on data ports;
//   test capture : TCLK on tclk, test_mode=1, scan_en=0.

#include <string>
#include <vector>

#include "gen/design_gen.h"

namespace mm::gen {

struct ModeFamilyParams {
  size_t num_modes = 3;
  size_t target_groups = 1;
  double base_period = 10.0;
  size_t group_mcps = 2;        // group-common multicycle paths
  size_t mode_fps = 3;          // per-mode unique false paths
  double io_delay_fraction = 0.2;  // input/output delay = fraction * period
  /// Conflict injected between groups (uncertainty / transition step).
  double group_conflict_step = 0.5;
  uint64_t seed = 7;

  // --- widened space (mm::fuzz drives these; defaults reproduce the seed
  // --- Table-5 family byte-for-byte) -------------------------------------
  /// Generated clocks per functional mode (divided domain clocks on the
  /// clock-mux outputs). Duplicate names are canonicalized away — the
  /// generator never emits two create_*clock commands with one name in the
  /// same mode (a duplicate would make the whole family trivially
  /// unmergeable and waste fuzz budget).
  size_t gen_clocks = 0;
  /// set_max_delay exceptions per mode; each has a 50% chance of a paired
  /// set_min_delay on the *same* endpoint (an equivalence edge case).
  size_t min_max_delays = 0;
  /// set_disable_timing on random gate output pins per mode.
  size_t disabled_arcs = 0;
  /// Replace the planted power-island case values with random ones (breaks
  /// the block-diagonal mergeability structure on purpose).
  bool randomize_case = false;
  /// Clock-group topology: 0 = asynchronous over all domain clocks (seed
  /// behavior), 1 = none, 2 = logically exclusive, 3 = CLK0-vs-rest
  /// asynchronous.
  size_t clock_group_style = 0;

  // --- near-miss mode (merge-policy families; docs/POLICIES.md) -----------
  /// When > 0, the cross-group conflict offsets walk the boundary of a
  /// windowed merge policy instead of taking group_conflict_step jumps:
  /// group g's carrier offset is offset(g-1) + (near_miss_window -
  /// near_miss_epsilon) for odd g and + (near_miss_window +
  /// near_miss_epsilon) for even g. Adjacent even->odd groups then disagree
  /// by W - eps (inside a width-W window) while odd->next-even groups
  /// disagree by W + eps (just outside), so an exact merge yields G cliques
  /// and a windowed merge with uniform window W yields ceil(G/2) — with
  /// every acceptance an intentional near-miss on both sides of the
  /// boundary. Group MCPs become family-common (cross-group merges must not
  /// trip on them), and functional modes gain a clock-latency carrier on
  /// CLK1 — a non-I/O clock, where the engine applies the same latency to
  /// launch and capture so the merged envelope cancels instead of loosening
  /// input-delay paths. 0 = seed behavior, byte-identical output.
  double near_miss_window = 0.0;
  /// Distance of each carrier gap from the window boundary (see above).
  double near_miss_epsilon = 0.0;
};

struct GeneratedMode {
  std::string name;
  std::string sdc_text;
  size_t group = 0;
};

std::vector<GeneratedMode> generate_mode_family(const DesignParams& design,
                                                const ModeFamilyParams& params);

}  // namespace mm::gen
