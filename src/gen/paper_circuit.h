#pragma once
// The paper's running example: the Figure-1 circuit and Constraint Sets
// 1-6 as reusable fixtures. Tests and the bench_paper_examples harness
// reproduce Table 1 (timing relationships) and Tables 2-4 (the 3-pass
// comparison) from these.
//
// Circuit (Figure 1):
//   ports: clk1 clk2 sel1 sel2 in1 (in), out1 (out)
//   or1  = OR2(sel1, sel2)            -> mux select
//   mux1 = MUX2(A=clk1, B=clk2, S=or1/Z)  -> gated clock g
//   rA rB rC: DFF, CP=clk1, D=in1
//   rX rY rZ: DFF, CP=mux1/Z
//   inv1: rA/Q -> inv1/Z -> rX/D and -> and1/A
//   and1: (inv1/Z, rB/Q) -> inv2 -> rY/D
//   inv3: rC/Q -> inv3/Z -> and2/B;  and2: (rC/Q, inv3/Z) -> rZ/D
//   out1 <- rZ/Q
//
// Deviation from the paper's shorthand: Constraint Set 4 writes
// "create_clock -name clkA" without period/source; our fixtures give every
// clock an explicit period and source port (clkA on clk1, clkB on clk2),
// which preserves the demonstrated behaviour.

#include "netlist/design.h"

namespace mm::gen {

/// Build the Figure-1 circuit over `lib` (use netlist::Library::builtin()).
netlist::Design paper_circuit(const netlist::Library& lib);

/// SDC text of the paper's constraint sets.
namespace constraint_sets {

// Constraint Set 1 (single mode; Table 1 relationships).
extern const char* kSet1;

// Constraint Set 2 (clock union + clock-based constraint merge).
extern const char* kSet2ModeA;
extern const char* kSet2ModeB;

// Constraint Set 3 (clock refinement + disable inference).
extern const char* kSet3ModeA;
extern const char* kSet3ModeB;

// Constraint Set 4 (exception uniquification).
extern const char* kSet4ModeA;
extern const char* kSet4ModeB;

// Constraint Set 5 (data refinement: clock propagation stop).
extern const char* kSet5ModeA;
extern const char* kSet5ModeB;

// Constraint Set 6 (the 3-pass algorithm; Tables 2-4).
extern const char* kSet6ModeA;
extern const char* kSet6ModeB;

}  // namespace constraint_sets

}  // namespace mm::gen
