#include "gen/mode_gen.h"

#include <set>
#include <sstream>

#include "util/error.h"
#include "util/rng.h"

namespace mm::gen {

using util::Rng;

namespace {

enum class Kind { kFunc, kScan, kTest };

Kind kind_of(size_t index_in_group, size_t group_size) {
  if (group_size >= 2 && index_in_group == 1) return Kind::kScan;
  if (group_size >= 3 && index_in_group == 2) return Kind::kTest;
  return Kind::kFunc;
}

class ModeWriter {
 public:
  ModeWriter(const DesignParams& d, const ModeFamilyParams& p)
      : d_(d), p_(p) {}

  GeneratedMode make(size_t mode_index, size_t group, size_t index_in_group,
                     size_t group_size) {
    const Kind kind = kind_of(index_in_group, group_size);
    clock_names_.clear();
    GeneratedMode out;
    out.group = group;
    std::ostringstream os;
    switch (kind) {
      case Kind::kFunc: {
        const size_t variant = index_in_group == 0 ? 0 : index_in_group - 2;
        out.name = "func" + std::to_string(group) + "_" + std::to_string(variant);
        write_func(os, mode_index, group, variant);
        break;
      }
      case Kind::kScan:
        out.name = "scan" + std::to_string(group);
        write_scan(os, group, /*shift=*/true);
        break;
      case Kind::kTest:
        out.name = "test" + std::to_string(group);
        write_scan(os, group, /*shift=*/false);
        break;
    }
    write_min_max_delays(os, mode_index);
    write_disabled_arcs(os, mode_index);
    write_mode_fps(os, mode_index);
    out.sdc_text = os.str();
    return out;
  }

 private:
  double domain_period(size_t domain) const {
    return p_.base_period * (1.0 + 0.25 * static_cast<double>(domain));
  }

  /// Canonicalizing clock-name guard: true the first time a name is seen in
  /// the current mode, false on a duplicate. Callers skip the duplicate
  /// emission — two create_*clock commands with one name would abort the
  /// parse and make the mode useless.
  bool claim_clock_name(const std::string& name) {
    return clock_names_.insert(name).second;
  }

  bool near_miss() const { return p_.near_miss_window > 0.0; }

  /// Cumulative carrier offset of a group. Default: group_conflict_step
  /// jumps (block-diagonal mergeability). Near-miss mode: alternating gaps
  /// of W -/+ eps around the policy window boundary (mode_gen.h).
  double group_offset(size_t group) const {
    if (!near_miss()) {
      return p_.group_conflict_step * static_cast<double>(group);
    }
    double off = 0.0;
    for (size_t g = 1; g <= group; ++g) {
      off += (g % 2 == 1) ? p_.near_miss_window - p_.near_miss_epsilon
                          : p_.near_miss_window + p_.near_miss_epsilon;
    }
    return off;
  }

  /// Conflict carrier: identical within a group, incompatible across groups
  /// — present in every mode kind so the mergeability graph is exactly
  /// block-diagonal.
  void write_conflict_carrier(std::ostringstream& os, size_t group) const {
    os << "set_input_transition " << 0.1 + group_offset(group)
       << " [get_ports di_0]\n";
  }

  void write_io_delays(std::ostringstream& os, const std::string& clock,
                       double period) const {
    const double delay = period * p_.io_delay_fraction;
    os << "set_input_delay " << delay << " -clock " << clock
       << " [get_ports di_*]\n";
    os << "set_output_delay " << delay << " -clock " << clock
       << " [get_ports do_*]\n";
  }

  void write_func(std::ostringstream& os, size_t mode_index, size_t group,
                  size_t variant) {
    const size_t domains = d_.num_domains;
    for (size_t d = 0; d < domains; ++d) {
      const std::string name = "CLK" + std::to_string(d);
      if (!claim_clock_name(name)) continue;
      os << "create_clock -name " << name << " -period " << domain_period(d)
         << " [get_ports clk" << d << "]\n";
    }
    write_gen_clocks(os, mode_index);
    // Group-conflicting clock uncertainty on the common clock.
    os << "set_clock_uncertainty -setup "
       << 0.05 * p_.base_period + group_offset(group)
       << " [get_clocks CLK0]\n";
    write_conflict_carrier(os, group);
    // Near-miss only: a latency carrier exercising the policy's latency
    // window. Deliberately NOT on CLK0 — input delays anchor there, and
    // the engine adds clock latency to register arrivals but not to
    // input-delay launches, so a latency envelope on CLK0 would loosen
    // input->register slacks (optimism). On CLK1 every same-clock path
    // shifts launch and capture equally and the envelope cancels.
    if (near_miss() && domains > 1) {
      os << "set_clock_latency " << 0.2 * p_.base_period + group_offset(group)
         << " [get_clocks CLK1]\n";
    }

    os << "set_case_analysis 0 test_mode\n";
    if (d_.scan) os << "set_case_analysis 0 scan_en\n";

    if (p_.randomize_case) {
      Rng rng(Rng::mix(p_.seed * 617, mode_index));
      for (size_t d = 0; d < domains; ++d) {
        os << "set_case_analysis " << rng.below(2) << " en" << d << "\n";
      }
    } else {
      // Power islands: the last domain is always off in functional modes;
      // each variant additionally gates one rotating domain.
      const size_t always_off = domains - 1;
      const size_t variant_off =
          domains > 1 ? variant % (domains - 1) : always_off;
      for (size_t d = 0; d < domains; ++d) {
        const bool off = (d == always_off) || (d == variant_off);
        os << "set_case_analysis " << (off ? 0 : 1) << " en" << d << "\n";
      }
    }

    write_io_delays(os, "CLK0", domain_period(0));

    // Cross-domain clock-group topology (style 0 = the industrial default:
    // everything asynchronous).
    if (domains > 1) {
      switch (p_.clock_group_style) {
        case 0:
          os << "set_clock_groups -asynchronous -name func_async";
          for (size_t d = 0; d < domains; ++d) {
            os << " -group [get_clocks CLK" << d << "]";
          }
          os << "\n";
          break;
        case 1:
          break;  // unrelated clocks: all cross-domain paths stay timed
        case 2:
          os << "set_clock_groups -logically_exclusive -name func_excl";
          for (size_t d = 0; d < domains; ++d) {
            os << " -group [get_clocks CLK" << d << "]";
          }
          os << "\n";
          break;
        default:
          // CLK0 vs the rest (single-group form; the parser adds the
          // complement group). Paths among CLK1.. stay timed.
          os << "set_clock_groups -asynchronous -name func_async0"
             << " -group [get_clocks CLK0]\n";
          break;
      }
    }

    // Group-common multicycle paths (identical across the group's
    // functional modes; uniquified against the group's scan/test modes).
    // Near-miss families make them family-common instead: cross-group
    // merges are the whole point there, and a one-sided MCP would block
    // every one of them.
    Rng rng(p_.seed * 977 + (near_miss() ? 0 : group));
    for (size_t i = 0; i < p_.group_mcps; ++i) {
      const size_t reg = rng.below(d_.num_regs);
      os << "set_multicycle_path 2 -setup -through [get_pins r" << reg
         << "/Q]\n";
    }
  }

  void write_scan(std::ostringstream& os, size_t group, bool shift) {
    if (claim_clock_name("TCLK")) {
      os << "create_clock -name TCLK -period " << p_.base_period * 4
         << " [get_ports tclk]\n";
    }
    write_conflict_carrier(os, group);
    os << "set_case_analysis 1 test_mode\n";
    if (d_.scan) os << "set_case_analysis " << (shift ? 1 : 0) << " scan_en\n";
    for (size_t d = 0; d < d_.num_domains; ++d) {
      os << "set_case_analysis 1 en" << d << "\n";
    }
    write_io_delays(os, "TCLK", p_.base_period * 4);
  }

  /// Widened space: divided versions of random domain clocks, defined on
  /// the clock-mux output so they reach the domain's registers. The rng can
  /// pick the same (domain, divisor) twice — claim_clock_name drops the
  /// duplicate instead of emitting an unparsable second definition.
  void write_gen_clocks(std::ostringstream& os, size_t mode_index) {
    if (p_.gen_clocks == 0) return;
    Rng rng(Rng::mix(p_.seed * 271, mode_index));
    for (size_t i = 0; i < p_.gen_clocks; ++i) {
      const size_t d = rng.below(d_.num_domains);
      const int div = rng.chance(50) ? 2 : 4;
      const std::string name =
          "GCLK" + std::to_string(d) + "x" + std::to_string(div);
      if (!claim_clock_name(name)) continue;
      os << "create_generated_clock -name " << name << " -source [get_ports clk"
         << d << "] -divide_by " << div << " [get_pins cmux" << d << "/Z]\n";
    }
  }

  /// Widened space: point min/max-delay exceptions, half the time stacked
  /// on the same endpoint (the §2 equivalence edge case).
  void write_min_max_delays(std::ostringstream& os, size_t mode_index) {
    if (p_.min_max_delays == 0) return;
    Rng rng(Rng::mix(p_.seed * 8191, mode_index));
    for (size_t i = 0; i < p_.min_max_delays; ++i) {
      const size_t reg = rng.below(d_.num_regs);
      os << "set_max_delay " << 2.0 + 0.5 * static_cast<double>(rng.below(8))
         << " -to [get_pins r" << reg << "/D]\n";
      if (rng.chance(50)) {
        os << "set_min_delay " << 0.1 * static_cast<double>(1 + rng.below(4))
           << " -to [get_pins r" << reg << "/D]\n";
      }
    }
  }

  /// Widened space: disabled timing arcs on random gate outputs.
  void write_disabled_arcs(std::ostringstream& os, size_t mode_index) {
    if (p_.disabled_arcs == 0) return;
    Rng rng(Rng::mix(p_.seed * 131, mode_index));
    const size_t num_gates = d_.num_regs * d_.comb_per_reg;
    for (size_t i = 0; i < p_.disabled_arcs; ++i) {
      os << "set_disable_timing [get_pins g" << rng.below(num_gates)
         << "/Z]\n";
    }
  }

  /// Per-mode unique false paths (droppable; §3.2 refinement re-derives
  /// their effect where required).
  void write_mode_fps(std::ostringstream& os, size_t mode_index) {
    Rng rng(p_.seed * 131071 + mode_index);
    const size_t num_gates = d_.num_regs * d_.comb_per_reg;
    for (size_t i = 0; i < p_.mode_fps; ++i) {
      switch (rng.below(3)) {
        case 0:
          os << "set_false_path -through [get_pins g" << rng.below(num_gates)
             << "/Z]\n";
          break;
        case 1:
          os << "set_false_path -to [get_pins r" << rng.below(d_.num_regs)
             << "/D]\n";
          break;
        default:
          os << "set_false_path -from [get_pins r" << rng.below(d_.num_regs)
             << "/CP]\n";
          break;
      }
    }
  }

  const DesignParams& d_;
  const ModeFamilyParams& p_;
  std::set<std::string> clock_names_;  // per-mode duplicate guard
};

}  // namespace

std::vector<GeneratedMode> generate_mode_family(const DesignParams& design,
                                                const ModeFamilyParams& params) {
  MM_ASSERT(params.num_modes > 0 && params.target_groups > 0);
  MM_ASSERT(params.target_groups <= params.num_modes);

  ModeWriter writer(design, params);
  std::vector<GeneratedMode> modes;
  modes.reserve(params.num_modes);

  // Contiguous group blocks, sizes as even as possible.
  size_t mode_index = 0;
  for (size_t g = 0; g < params.target_groups; ++g) {
    const size_t begin = g * params.num_modes / params.target_groups;
    const size_t end = (g + 1) * params.num_modes / params.target_groups;
    for (size_t k = begin; k < end; ++k) {
      modes.push_back(writer.make(mode_index, g, k - begin, end - begin));
      ++mode_index;
    }
  }
  return modes;
}

}  // namespace mm::gen
