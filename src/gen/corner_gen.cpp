#include "gen/corner_gen.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace mm::gen {

namespace {

/// Commands whose first numeric argument is a derated value channel,
/// mapped to which CornerSpec scale applies.
double scale_for_command(const std::string& cmd, const CornerSpec& corner) {
  if (cmd == "set_clock_latency" || cmd == "set_clock_uncertainty" ||
      cmd == "set_clock_transition") {
    return corner.clock_scale;
  }
  if (cmd == "set_input_transition" || cmd == "set_drive") {
    return corner.drive_scale;
  }
  if (cmd == "set_load") return corner.load_scale;
  return 1.0;
}

bool looks_numeric(const std::string& token) {
  if (token.empty()) return false;
  const char c = token[0];
  if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') return true;
  // A leading '-' is a flag (-setup, -min) unless a digit follows.
  return c == '-' && token.size() > 1 &&
         (std::isdigit(static_cast<unsigned char>(token[1])) ||
          token[1] == '.');
}

/// Scale the line's first fully-numeric token. Tokens are space-separated;
/// the rebuilt line preserves every other token byte-for-byte and formats
/// the scaled value with ostream default precision — the same style the
/// mode generator streams values with.
std::string scale_first_value(const std::string& line, double scale) {
  std::istringstream in(line);
  std::ostringstream out;
  std::string token;
  bool scaled = false;
  bool first = true;
  while (in >> token) {
    if (!first) out << ' ';
    first = false;
    if (!scaled && looks_numeric(token)) {
      char* end = nullptr;
      const double value = std::strtod(token.c_str(), &end);
      if (end != nullptr && *end == '\0') {
        out << value * scale;
        scaled = true;
        continue;
      }
    }
    out << token;
  }
  return out.str();
}

}  // namespace

std::vector<CornerSpec> make_corner_specs(const CornerFamilyParams& params) {
  std::vector<CornerSpec> out;
  const size_t n = params.num_corners == 0 ? 1 : params.num_corners;
  out.reserve(n);
  for (size_t c = 0; c < n; ++c) {
    CornerSpec spec;
    spec.name = params.name_prefix + std::to_string(c);
    const double k = static_cast<double>(c);
    spec.clock_scale = 1.0 + k * params.clock_derate_step;
    spec.drive_scale = 1.0 + k * params.drive_derate_step;
    spec.load_scale = 1.0 + k * params.load_derate_step;
    spec.structural_break =
        params.structural_break_corner != 0 &&
        c == params.structural_break_corner;
    out.push_back(std::move(spec));
  }
  return out;
}

std::string apply_corner(const std::string& sdc_text,
                         const CornerSpec& corner) {
  const bool identity = corner.clock_scale == 1.0 &&
                        corner.drive_scale == 1.0 &&
                        corner.load_scale == 1.0 && !corner.structural_break;
  if (identity) return sdc_text;

  std::ostringstream out;
  std::istringstream in(sdc_text);
  std::string line;
  while (std::getline(in, line)) {
    const size_t cmd_end = line.find(' ');
    const std::string cmd =
        cmd_end == std::string::npos ? line : line.substr(0, cmd_end);
    const double scale = scale_for_command(cmd, corner);
    out << (scale == 1.0 ? line : scale_first_value(line, scale)) << '\n';
  }
  if (corner.structural_break) {
    // An extra drive channel: reshapes the drive list, so this corner's
    // structural fingerprint diverges from the mode's skeleton and the
    // engine must fall back to a full extraction + full pair check.
    out << "set_input_transition " << 0.37 * corner.drive_scale
        << " [get_ports di_1]\n";
  }
  return out.str();
}

CornerFamily generate_corner_family(const DesignParams& design,
                                    const ModeFamilyParams& modes,
                                    const CornerFamilyParams& corners) {
  CornerFamily out;
  out.modes = generate_mode_family(design, modes);
  out.corners = make_corner_specs(corners);
  out.sdc_texts.reserve(out.modes.size());
  for (const GeneratedMode& mode : out.modes) {
    std::vector<std::string> row;
    row.reserve(out.corners.size());
    for (const CornerSpec& corner : out.corners) {
      row.push_back(apply_corner(mode.sdc_text, corner));
    }
    out.sdc_texts.push_back(std::move(row));
  }
  return out;
}

}  // namespace mm::gen
