#include "gen/paper_circuit.h"

#include "netlist/builder.h"

namespace mm::gen {

using netlist::Builder;
using netlist::Design;
using netlist::PinDir;

Design paper_circuit(const netlist::Library& lib) {
  Design design("paper_fig1", &lib);
  Builder b(&design);

  b.input("clk1");
  b.input("clk2");
  b.input("sel1");
  b.input("sel2");
  b.input("in1");
  b.output("out1");

  b.inst("OR2", "or1", {{"A", "sel1"}, {"B", "sel2"}, {"Z", "sel_z"}});
  b.inst("MUX2", "mux1",
         {{"A", "clk1"}, {"B", "clk2"}, {"S", "sel_z"}, {"Z", "gclk"}});

  b.inst("DFF", "rA", {{"D", "in1"}, {"CP", "clk1"}, {"Q", "qa"}});
  b.inst("DFF", "rB", {{"D", "in1"}, {"CP", "clk1"}, {"Q", "qb"}});
  b.inst("DFF", "rC", {{"D", "in1"}, {"CP", "clk1"}, {"Q", "qc"}});

  b.inst("INV", "inv1", {{"A", "qa"}, {"Z", "n1"}});
  b.inst("AND2", "and1", {{"A", "n1"}, {"B", "qb"}, {"Z", "n2"}});
  b.inst("INV", "inv2", {{"A", "n2"}, {"Z", "n3"}});

  b.inst("INV", "inv3", {{"A", "qc"}, {"Z", "n5"}});
  b.inst("AND2", "and2", {{"A", "qc"}, {"B", "n5"}, {"Z", "n4"}});

  b.inst("DFF", "rX", {{"D", "n1"}, {"CP", "gclk"}, {"Q", "qx"}});
  b.inst("DFF", "rY", {{"D", "n3"}, {"CP", "gclk"}, {"Q", "qy"}});
  b.inst("DFF", "rZ", {{"D", "n4"}, {"CP", "gclk"}, {"Q", "out1"}});

  return design;
}

namespace constraint_sets {

const char* kSet1 = R"(
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_false_path -through [and1/Z]
)";

const char* kSet2ModeA = R"(
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk2]
set_clock_latency -min 1.0 [get_clocks clkB]
)";

const char* kSet2ModeB = R"(
create_clock -name clkA -period 8 [get_ports clk1]
create_clock -name clkB -period 5 [get_ports clk2]
create_clock -name clkC -period 20 -add [get_ports clk2]
set_clock_latency -min 1.05 [get_clocks clkC]
)";

const char* kSet3ModeA = R"(
create_clock -period 10 -name clkA [get_ports clk1]
create_clock -period 20 -name clkB [get_ports clk2]
set_case_analysis 0 sel1
set_case_analysis 1 sel2
)";

const char* kSet3ModeB = R"(
create_clock -period 10 -name clkA [get_ports clk1]
create_clock -period 20 -name clkB [get_ports clk2]
set_case_analysis 1 sel1
set_case_analysis 0 sel2
)";

const char* kSet4ModeA = R"(
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 [mux1/S]
set_multicycle_path 2 -from [rA/CP]
)";

const char* kSet4ModeB = R"(
create_clock -name clkB -period 20 [get_ports clk2]
set_case_analysis 1 [mux1/S]
)";

const char* kSet5ModeA = R"(
create_clock -name ClkA -period 2 [get_ports clk1]
set_input_delay 0.2 -clock ClkA [get_ports in1]
set_output_delay 0.2 -clock ClkA [get_ports out1]
)";

const char* kSet5ModeB = R"(
create_clock -name ClkB -period 1 [get_ports clk1]
set_input_delay 0.2 -clock ClkB [get_ports in1]
set_output_delay 0.2 -clock ClkB [get_ports out1]
set_case_analysis 0 rB/Q
)";

const char* kSet6ModeA = R"(
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -to rX/D
set_false_path -to rY/D
set_false_path -through inv3/Z
)";

const char* kSet6ModeB = R"(
create_clock -p 10 -name clkA [get_ports clk1]
set_false_path -from rA/CP
set_false_path -to rZ/D
)";

}  // namespace constraint_sets

}  // namespace mm::gen
