#include "gen/design_gen.h"

#include <vector>

#include "netlist/builder.h"
#include "util/error.h"
#include "util/rng.h"

namespace mm::gen {

using netlist::Builder;
using netlist::Design;
using util::Rng;

namespace {

const char* kCombCells[] = {"INV", "AND2", "OR2", "XOR2", "NAND2", "NOR2"};

}  // namespace

Design generate_design(const netlist::Library& lib, const DesignParams& p) {
  MM_ASSERT(p.num_regs > 0 && p.num_domains > 0);
  Design design(p.name, &lib);
  Builder b(&design);
  Rng rng(p.seed);

  // --- ports ---------------------------------------------------------------
  std::vector<std::string> clk_nets;
  for (size_t d = 0; d < p.num_domains; ++d) {
    clk_nets.push_back("clk" + std::to_string(d));
    b.input(clk_nets.back());
  }
  b.input("tclk");
  b.input("test_mode");
  if (p.scan) b.input("scan_en");
  std::vector<std::string> en_nets;
  for (size_t d = 0; d < p.num_domains; ++d) {
    en_nets.push_back("en" + std::to_string(d));
    b.input(en_nets.back());
  }
  std::vector<std::string> din;
  for (size_t i = 0; i < p.num_data_ports; ++i) {
    din.push_back("di_" + std::to_string(i));
    b.input(din.back());
  }
  std::vector<std::string> dout;
  for (size_t i = 0; i < p.num_data_ports; ++i) {
    dout.push_back("do_" + std::to_string(i));
    b.output(dout.back());
  }

  // --- clock distribution ----------------------------------------------------
  // dclk_d = test_mode ? tclk : clk_d ; gdclk_d = ICG(dclk_d, en_d)
  std::vector<std::string> dclk(p.num_domains), gdclk(p.num_domains);
  for (size_t d = 0; d < p.num_domains; ++d) {
    dclk[d] = "dclk" + std::to_string(d);
    b.inst("MUX2", "cmux" + std::to_string(d),
           {{"A", clk_nets[d]}, {"B", "tclk"}, {"S", "test_mode"},
            {"Z", dclk[d]}});
    if (p.clock_gates) {
      gdclk[d] = "gdclk" + std::to_string(d);
      b.inst("ICG", "icg" + std::to_string(d),
             {{"CK", dclk[d]}, {"EN", en_nets[d]}, {"GCLK", gdclk[d]}});
    } else {
      gdclk[d] = dclk[d];
    }
  }

  // --- registers + combinational clouds ---------------------------------------
  // Register i: domain i % D; D input fed by a small random cloud over the
  // Q nets of registers [i - span, i) and data-in ports.
  std::vector<std::string> q_net(p.num_regs);
  // Registers are striped into nb contiguous clusters; scan chains restart
  // per (domain, cluster) so chains never cross the cut. nb == 1 draws the
  // exact random stream the pre-block generator drew.
  const size_t nb = std::min(std::max<size_t>(1, p.num_blocks), p.num_regs);
  auto block_of = [&](size_t i) { return i * nb / p.num_regs; };
  std::vector<std::string> prev_q_in_domain(p.num_domains * nb);

  size_t gate_counter = 0;
  for (size_t i = 0; i < p.num_regs; ++i) {
    const size_t d = i % p.num_domains;
    q_net[i] = "q" + std::to_string(i);

    // Sources for this register's cone. With clustering, the fan-in window
    // is clipped to the register's own cluster except for the (thin)
    // crossing_percent fraction allowed to reach across the edge.
    auto pick_source = [&]() -> std::string {
      if (i == 0 || rng.below(4) == 0) {
        return din[rng.below(din.size())];
      }
      size_t lo = i > p.fanin_span ? i - p.fanin_span : 0;
      if (nb > 1 && !rng.chance(p.crossing_percent)) {
        const size_t bstart =
            (block_of(i) * p.num_regs + nb - 1) / nb;  // cluster's first reg
        if (bstart > lo) lo = bstart;
        if (lo >= i) return din[rng.below(din.size())];
      }
      return q_net[lo + rng.below(i - lo)];
    };

    std::string data = pick_source();
    for (size_t g = 0; g < p.comb_per_reg; ++g) {
      const char* cell = kCombCells[rng.below(std::size(kCombCells))];
      const std::string gname = "g" + std::to_string(gate_counter);
      const std::string znet = "n" + std::to_string(gate_counter);
      ++gate_counter;
      if (cell[0] == 'I') {  // INV: single input
        b.inst(cell, gname, {{"A", data}, {"Z", znet}});
      } else {
        b.inst(cell, gname, {{"A", data}, {"B", pick_source()}, {"Z", znet}});
      }
      data = znet;
    }

    const bool gated = p.clock_gates && (i % 3 == 0);
    const std::string& cp = gated ? gdclk[d] : dclk[d];
    const std::string rname = "r" + std::to_string(i);
    const size_t chain = d + p.num_domains * block_of(i);
    if (p.scan) {
      // Chain within the (domain, cluster); first flop of a chain loads
      // from its own D source via SI too (head of chain tied to a data
      // port).
      const std::string si = prev_q_in_domain[chain].empty()
                                 ? din[d % din.size()]
                                 : prev_q_in_domain[chain];
      b.inst("SDFF", rname,
             {{"D", data}, {"SI", si}, {"SE", "scan_en"}, {"CP", cp},
              {"Q", q_net[i]}});
    } else {
      b.inst("DFF", rname, {{"D", data}, {"CP", cp}, {"Q", q_net[i]}});
    }
    prev_q_in_domain[chain] = q_net[i];
  }

  // --- outputs -----------------------------------------------------------------
  for (size_t i = 0; i < p.num_data_ports; ++i) {
    const size_t src = p.num_regs - 1 - (i % p.num_regs);
    b.inst("BUF", "ob" + std::to_string(i), {{"A", q_net[src]}, {"Z", dout[i]}});
  }

  return design;
}

}  // namespace mm::gen
