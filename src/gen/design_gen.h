#pragma once
// Parameterized synthetic design generator — the stand-in for the paper's
// proprietary industrial designs A-F (see DESIGN.md, substitution table).
//
// Generated structure (mirrors the mode-merging-relevant anatomy of an SoC):
//   - D clock domain ports clk0..clk{D-1}, one test clock port tclk,
//     control ports test_mode / scan_en, domain enable ports en0..,
//     data ports di_* / do_*;
//   - per-domain clock mux  cmux_d = MUX2(clk_d, tclk, S=test_mode) so test
//     modes retarget every domain onto tclk (what makes merged clock
//     refinement non-trivial);
//   - optional per-domain clock gate icg_d driven by en_d;
//   - R registers (scan flops when `scan`), round-robin across domains,
//     scan-chained per domain (SI <- previous flop's Q, SE = scan_en);
//   - random feed-forward combinational clouds between register ranks,
//     fed from nearby registers' Q pins and data-in ports.
//
// Block structure (num_blocks > 1): registers are striped into num_blocks
// contiguous clusters and each register's cone is drawn from its own
// cluster, except with crossing_percent probability the cone may reach back
// across the cluster edge; scan chains restart per (domain, block). The
// result is a netlist whose natural cut is thin — the workload
// netlist::partition_design and the sharding benchmarks expect
// (docs/SHARDING.md). num_blocks == 1 (default) is byte-identical to the
// pre-block generator for a given seed.
//
// Everything is deterministic in `seed`.

#include <cstdint>
#include <string>

#include "netlist/design.h"

namespace mm::gen {

struct DesignParams {
  std::string name = "synth";
  size_t num_regs = 1000;
  size_t num_domains = 4;
  size_t num_data_ports = 8;   // data inputs (same count of outputs)
  size_t comb_per_reg = 3;     // combinational gates per register (size knob)
  size_t fanin_span = 8;       // how far back a register's cone reaches
  bool scan = true;            // use scan flops + chains
  bool clock_gates = true;     // one ICG per domain, used by 1/3 of regs
  size_t num_blocks = 1;       // register clusters (1 = unstructured)
  int crossing_percent = 5;    // % of cone sources allowed across a cluster edge
  uint64_t seed = 1;

  size_t approx_cells() const { return num_regs * (1 + comb_per_reg); }
};

netlist::Design generate_design(const netlist::Library& lib,
                                const DesignParams& params);

}  // namespace mm::gen
